// The transport abstraction every protocol layer is written against.
//
// A Transport moves immutable messages between attached endpoints. The
// protocol stack (gcs, replication, client, fault, harness) names only
// this interface — never a concrete backend — so the same gateway logic
// runs unmodified over
//
//   * LoopbackTransport (net/loopback.hpp) — in-process delivery through
//     the executor's timer queue with configurable latency models, loss,
//     partitions, and crashes. Under a SimExecutor this is the paper's
//     deterministic simulated LAN; under a RealTimeExecutor it is a
//     loopback with real injected latency.
//   * UdpTransport (net/udp_transport.hpp) — non-blocking UDP sockets
//     between OS processes, with a per-peer address book and the wire
//     codec (net/codec.hpp) for framing. Used by live_cli's multi-process
//     deployment.
//   * ChaosTransport (net/chaos.hpp) — a decorator that wraps either
//     backend and adds a seeded-deterministic gray-failure layer (loss,
//     extra delay, reordering, duplication, partial partitions, link
//     throttling) on the send path. Built through make_chaos_transport().
//
// The layering lint (tools/check_layering.py) enforces that protocol code
// includes this header and not the concrete transport headers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/node.hpp"
#include "obs/observability.hpp"
#include "runtime/executor.hpp"
#include "sim/check.hpp"
#include "sim/random.hpp"

namespace aqueduct::net {

/// Implemented by anything that can receive messages from a transport.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Invoked (on the executor's loop thread, at the delivery time) for
  /// each message addressed to this endpoint.
  virtual void on_message(NodeId from, MessagePtr msg) = 0;
};

/// Snapshot of the transport counters (assembled from the registry-backed
/// instruments; see metrics "net.*").
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_detached = 0;
  /// Sends to a destination the transport has no route for (UDP: not in
  /// the address book). Always 0 on the loopback.
  std::uint64_t messages_dropped_unroutable = 0;
  /// Inbound frames rejected by the wire codec (bad magic/version/type,
  /// truncation, trailing bytes). Always 0 on the loopback, which never
  /// serializes.
  std::uint64_t decode_errors = 0;
  std::uint64_t bytes_sent = 0;
  /// Gray-failure counters. Only the chaos decorator (net/chaos.hpp)
  /// duplicates, reorders, or injects extra delay on purpose; on bare
  /// backends these stay 0.
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_delayed = 0;
};

/// Fault-injection surface of a transport that can misbehave on demand.
/// The loopback implements the crash-era core (latency overrides, loss,
/// partitions); bare real-socket transports return nullptr from
/// Transport::fault_injection() and suffer only genuine faults. Wrapping
/// any backend in the chaos decorator (make_chaos_transport) yields a
/// surface that additionally supports the gray-failure knobs below —
/// check supports_gray_faults() before scripting them. Protocol layers
/// and fault schedules name only this interface, never a concrete
/// implementation.
class FaultInjection {
 public:
  virtual ~FaultInjection() = default;

  /// Overrides the latency model for the (a, b) pair, both directions.
  virtual void set_link_latency(
      NodeId a, NodeId b, std::shared_ptr<sim::DurationDistribution> latency) = 0;

  /// Overrides the latency model for every link touching `node` (both
  /// directions). Models a slow host/NIC, as in the paper's heterogeneous
  /// 300 MHz–1 GHz testbed.
  virtual void set_node_latency(
      NodeId node, std::shared_ptr<sim::DurationDistribution> latency) = 0;

  /// Removes a node-level latency override installed by set_node_latency()
  /// (links fall back to per-link overrides or the default model). Used by
  /// fault schedules to end a latency spike.
  virtual void clear_node_latency(NodeId node) = 0;

  /// Probability in [0, 1] that any given message is silently dropped.
  virtual void set_loss_probability(double p) = 0;

  /// Directional per-link loss: messages from `from` to `to` (and only in
  /// that direction) are dropped with probability `p`. Overrides node and
  /// global loss for that link.
  virtual void set_link_loss(NodeId from, NodeId to, double p) = 0;

  /// Removes a directional per-link loss override.
  virtual void clear_link_loss(NodeId from, NodeId to) = 0;

  /// Loss applied to every message *received* by `node` (unless a per-link
  /// override matches). Composes with outbound/global loss via max.
  virtual void set_inbound_loss(NodeId node, double p) = 0;

  /// Loss applied to every message *sent* by `node` (unless a per-link
  /// override matches). Composes with inbound/global loss via max.
  virtual void set_outbound_loss(NodeId node, double p) = 0;

  /// Effective drop probability the send path would use for (from, to).
  virtual double loss_probability(NodeId from, NodeId to) const = 0;

  /// Drops all traffic between the two sides until heal() is called.
  /// Nodes in neither set communicate normally with everyone.
  virtual void partition(std::vector<NodeId> side_a,
                         std::vector<NodeId> side_b) = 0;

  /// Removes any active partition (including partial_partition() links).
  virtual void heal() = 0;

  // --- Gray-failure surface -------------------------------------------
  //
  // Slow-but-alive links, duplicated/reordered delivery, and partial
  // partitions. Only the chaos decorator implements these; the defaults
  // fail loudly so a schedule scripting gray faults against a bare
  // backend is a configuration error, not a silent no-op.

  /// True when the gray-failure knobs below are implemented. Callers
  /// (e.g. fault::FaultSchedule::apply) must check this before using them.
  virtual bool supports_gray_faults() const { return false; }

  /// Extra delay added to every message without a more specific override,
  /// sampled per message. nullptr clears.
  virtual void set_default_delay(
      std::shared_ptr<sim::DurationDistribution> extra) {
    (void)extra;
    gray_unsupported("set_default_delay");
  }

  /// Directional extra delay for messages from `from` to `to`, sampled per
  /// message — the primitive behind asymmetric links and WAN latency
  /// matrices. Overrides node-level and default extra delay for that link.
  virtual void set_link_delay(NodeId from, NodeId to,
                              std::shared_ptr<sim::DurationDistribution> extra) {
    (void)from;
    (void)to;
    (void)extra;
    gray_unsupported("set_link_delay");
  }

  /// Removes a directional extra-delay override.
  virtual void clear_link_delay(NodeId from, NodeId to) {
    (void)from;
    (void)to;
    gray_unsupported("clear_link_delay");
  }

  /// Probability in [0, 1] that a message is sent twice (each copy delayed
  /// independently, so duplicates also reorder). Applies to every link
  /// without a per-link override.
  virtual void set_duplicate_probability(double p) {
    (void)p;
    gray_unsupported("set_duplicate_probability");
  }

  /// Directional per-link duplication probability; overrides the global
  /// knob for that link. p == 0 with no global knob disables.
  virtual void set_link_duplicate(NodeId from, NodeId to, double p) {
    (void)from;
    (void)to;
    (void)p;
    gray_unsupported("set_link_duplicate");
  }

  /// Removes a directional per-link duplication override.
  virtual void clear_link_duplicate(NodeId from, NodeId to) {
    (void)from;
    (void)to;
    gray_unsupported("clear_link_duplicate");
  }

  /// Probability in [0, 1] that a message is held back by an extra uniform
  /// delay in [0, reorder window), letting later sends overtake it.
  virtual void set_reorder_probability(double p) {
    (void)p;
    gray_unsupported("set_reorder_probability");
  }

  /// Maximum holdback used by reordering (default 50 ms).
  virtual void set_reorder_window(sim::Duration window) {
    (void)window;
    gray_unsupported("set_reorder_window");
  }

  /// Serializes the directional link `from` → `to` so consecutive messages
  /// enter the wrapped backend at least `min_gap` apart — a slow-but-alive
  /// link that stays connected but cannot sustain throughput. Zero clears.
  virtual void set_link_throttle(NodeId from, NodeId to,
                                 sim::Duration min_gap) {
    (void)from;
    (void)to;
    (void)min_gap;
    gray_unsupported("set_link_throttle");
  }

  /// Blackholes traffic between `a` and `b` (both directions) without
  /// touching any other link — a partial partition. Undone by heal_link()
  /// or heal().
  virtual void partial_partition(NodeId a, NodeId b) {
    (void)a;
    (void)b;
    gray_unsupported("partial_partition");
  }

  /// Restores the (a, b) pair: removes the partial partition and any
  /// per-link delay/loss/duplication/throttle overrides, both directions.
  virtual void heal_link(NodeId a, NodeId b) {
    (void)a;
    (void)b;
    gray_unsupported("heal_link");
  }

  /// Resets every gray-failure knob (delays, duplication, reordering,
  /// throttles, partial partitions) and all loss settings. Full-mesh
  /// partitions installed via partition() are also healed.
  virtual void heal_gray() { gray_unsupported("heal_gray"); }

 protected:
  [[noreturn]] static void gray_unsupported(const char* what) {
    AQUEDUCT_CHECK_MSG(false, "FaultInjection::"
                                  << what
                                  << " needs gray-failure support — wrap the "
                                     "transport via net::make_chaos_transport() "
                                     "(this backend only injects crash-era "
                                     "faults)");
  }
};

/// Abstract message mover: endpoint attach/detach, unreliable datagram
/// send/multicast, counters, and the per-process observability context
/// (metrics registry + multi-subscriber trace hub).
///
/// Delivery guarantees: none beyond best effort. Messages can be
/// reordered, dropped, and (over real sockets) duplicated; reliable
/// virtually synchronous FIFO delivery is built on top by the gcs layer,
/// exactly as AQuA builds on Maestro/Ensemble over a physical LAN.
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Registers an endpoint and returns its id. The loopback assigns fresh
  /// ids; socket transports return the process's configured identity. The
  /// endpoint must outlive the transport or call detach() first.
  virtual NodeId attach(Endpoint& endpoint) = 0;

  /// Removes the endpoint: all in-flight and future messages to or from it
  /// are dropped. Used to model fail-stop crashes.
  virtual void detach(NodeId id) = 0;

  virtual bool is_attached(NodeId id) const = 0;

  /// Sends `msg` from `from` to `to`. Sending to an unknown or detached
  /// node silently drops (the sender cannot know the destination crashed —
  /// that is the failure detector's job).
  virtual void send(NodeId from, NodeId to, MessagePtr msg) = 0;

  /// Sends to each destination individually (unreliable multicast).
  virtual void multicast(NodeId from, const std::vector<NodeId>& to,
                         const MessagePtr& msg) {
    for (NodeId dest : to) send(from, dest, msg);
  }

  virtual TransportStats stats() const = 0;

  /// Per-process observability context. The transport owns it because it
  /// is the one object every component of a deployment shares.
  virtual obs::Observability& observability() = 0;
  obs::MetricsRegistry& metrics() { return observability().metrics; }
  obs::TraceHub& tracing() { return observability().trace; }

  virtual runtime::Executor& executor() = 0;

  /// The transport's fault-injection surface, or nullptr if it cannot
  /// inject faults (real sockets).
  virtual FaultInjection* fault_injection() { return nullptr; }
};

/// Builds the in-process loopback backend (a LoopbackTransport) without
/// naming its header. `default_latency` is sampled independently per
/// message for every link without an explicit override. This is the
/// factory composition roots that must stay backend-agnostic (e.g.
/// harness::Scenario) construct through.
std::unique_ptr<Transport> make_loopback_transport(
    runtime::Executor& exec,
    std::unique_ptr<sim::DurationDistribution> default_latency);

/// Wraps any backend (loopback or UDP) in the chaos decorator
/// (a ChaosTransport, net/chaos.hpp): the returned transport's
/// fault_injection() supports the full gray-failure surface with
/// seeded-deterministic decisions drawn from `exec.rng().split()` of the
/// wrapped backend's executor. Messages the chaos layer lets through are
/// forwarded to `inner` unchanged.
std::unique_ptr<Transport> make_chaos_transport(std::unique_ptr<Transport> inner);

}  // namespace aqueduct::net
