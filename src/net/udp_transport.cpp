#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::net {

namespace {

// A peer address packed as (ipv4 << 16) | port, both host byte order —
// avoids leaking <netinet/in.h> types into the header.
std::uint64_t pack_addr(std::uint32_t ip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip) << 16) | port;
}

sockaddr_in unpack_addr(std::uint64_t packed) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(packed >> 16));
  addr.sin_port = htons(static_cast<std::uint16_t>(packed & 0xffff));
  return addr;
}

std::uint32_t resolve_ipv4(const std::string& host) {
  if (host.empty() || host == "localhost") return INADDR_LOOPBACK;
  in_addr parsed{};
  if (inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    throw std::runtime_error("UdpTransport: not an IPv4 address: " + host);
  }
  return ntohl(parsed.s_addr);
}

// Datagram envelope preceding the codec frame: sender and destination
// node ids (the frame itself is address-agnostic and reusable as-is for
// storage or replay).
constexpr std::size_t kEnvelopeSize = 8;

}  // namespace

UdpTransport::UdpTransport(runtime::Executor& exec, UdpConfig config)
    : exec_(exec),
      config_(std::move(config)),
      recv_buf_(64 * 1024),
      c_sent_(obs_.metrics.counter("net.messages_sent")),
      c_delivered_(obs_.metrics.counter("net.messages_delivered")),
      c_dropped_detached_(obs_.metrics.counter("net.messages_dropped_detached")),
      c_dropped_unroutable_(
          obs_.metrics.counter("net.messages_dropped_unroutable")),
      c_decode_errors_(obs_.metrics.counter("net.decode_errors")),
      c_bytes_sent_(obs_.metrics.counter("net.bytes_sent")) {
  AQUEDUCT_CHECK_MSG(config_.local_id.valid(),
                     "UdpTransport requires a valid local node id");
  for (const UdpPeer& peer : config_.peers) add_peer(peer);

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("UdpTransport: socket(): ") +
                             std::strerror(errno));
  }
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr.s_addr = htonl(resolve_ipv4(config_.listen_host));
  bind_addr.sin_port = htons(config_.listen_port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("UdpTransport: bind(" + config_.listen_host + ":" +
                             std::to_string(config_.listen_port) + "): " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }
  schedule_poll();
}

UdpTransport::~UdpTransport() {
  exec_.cancel(poll_handle_);
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::add_peer(const UdpPeer& peer) {
  AQUEDUCT_CHECK_MSG(peer.id.valid(), "peer with invalid node id");
  peer_addrs_[peer.id] = pack_addr(resolve_ipv4(peer.host), peer.port);
}

NodeId UdpTransport::attach(Endpoint& endpoint) {
  AQUEDUCT_CHECK_MSG(endpoint_ == nullptr,
                     "UdpTransport hosts one endpoint per process");
  endpoint_ = &endpoint;
  return config_.local_id;
}

void UdpTransport::detach(NodeId id) {
  if (id == config_.local_id) endpoint_ = nullptr;
}

void UdpTransport::tap(NodeId from, NodeId to, const MessagePtr& msg,
                       const char* dropped) {
  if (!obs_.trace.active()) return;
  obs::MessageEvent event;
  event.at = exec_.now();
  event.from = from;
  event.to = to;
  event.type_name = msg->type_name();
  event.wire_size = msg->wire_size();
  event.dropped = dropped;
  obs_.trace.message(event);
}

void UdpTransport::send(NodeId from, NodeId to, MessagePtr msg) {
  AQUEDUCT_CHECK(msg != nullptr);
  AQUEDUCT_CHECK_MSG(from.valid() && to.valid(), "send with invalid node id");
  c_sent_.inc();
  if (!is_attached(from)) {
    // A detached (crashed) local endpoint cannot send; a foreign `from`
    // would forge another node's identity.
    c_dropped_detached_.inc();
    tap(from, to, msg, "detached");
    return;
  }
  auto it = peer_addrs_.find(to);
  if (it == peer_addrs_.end()) {
    c_dropped_unroutable_.inc();
    tap(from, to, msg, "unroutable");
    return;
  }
  Writer w;
  w.node(from);
  w.node(to);
  try {
    encode_frame(*msg, w);
  } catch (const CodecError&) {
    // Not serializable (ad-hoc local type): cannot cross a process
    // boundary. Surface it like a decode error — dropped, counted, never
    // silently corrupted.
    c_decode_errors_.inc();
    tap(from, to, msg, "encode_error");
    return;
  }
  c_bytes_sent_.inc(w.size());
  tap(from, to, msg, "");
  const sockaddr_in addr = unpack_addr(it->second);
  // Best effort, exactly like the wire: a full socket buffer or an
  // oversized frame is message loss, and the gcs layer's NACK/heartbeat
  // machinery recovers.
  (void)::sendto(fd_, w.bytes().data(), w.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

void UdpTransport::schedule_poll() {
  poll_handle_ = exec_.after(config_.poll_interval, [this] {
    drain_socket();
    schedule_poll();
  });
}

void UdpTransport::drain_socket() {
  for (;;) {
    const ssize_t n =
        ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0, nullptr, nullptr);
    if (n < 0) return;  // EAGAIN/EWOULDBLOCK: drained (other errors: retry next poll)
    Reader r(recv_buf_.data(), static_cast<std::size_t>(n));
    NodeId from, to;
    MessagePtr msg;
    try {
      from = r.node();
      to = r.node();
      msg = decode_frame(r);
      if (!r.done()) throw CodecError("trailing bytes after frame");
      if (!from.valid() || !to.valid()) throw CodecError("invalid node id");
    } catch (const CodecError&) {
      c_decode_errors_.inc();
      continue;
    }
    if (to != config_.local_id || endpoint_ == nullptr) {
      c_dropped_detached_.inc();
      continue;
    }
    c_delivered_.inc();
    endpoint_->on_message(from, msg);
  }
}

TransportStats UdpTransport::stats() const {
  TransportStats s;
  s.messages_sent = c_sent_.value();
  s.messages_delivered = c_delivered_.value();
  s.messages_dropped_detached = c_dropped_detached_.value();
  s.messages_dropped_unroutable = c_dropped_unroutable_.value();
  s.decode_errors = c_decode_errors_.value();
  s.bytes_sent = c_bytes_sent_.value();
  return s;
}

}  // namespace aqueduct::net
