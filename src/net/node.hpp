// Strongly typed node identity.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace aqueduct::net {

/// Identifies an endpoint attached to the network. Assigned by the Network
/// on attach(); value 0 is reserved as "invalid".
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  std::uint32_t value_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << "n" << id.value();
}

inline std::string to_string(NodeId id) {
  return "n" + std::to_string(id.value());
}

}  // namespace aqueduct::net

template <>
struct std::hash<aqueduct::net::NodeId> {
  std::size_t operator()(aqueduct::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
