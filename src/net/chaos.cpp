#include "net/chaos.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::net {

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner)
    : inner_(std::move(inner)),
      exec_(inner_->executor()),
      rng_(exec_.rng().split()),
      alive_(std::make_shared<const bool>(true)),
      c_dropped_loss_(inner_->metrics().counter("net.chaos.dropped_loss")),
      c_dropped_partition_(
          inner_->metrics().counter("net.chaos.dropped_partition")),
      c_duplicated_(inner_->metrics().counter("net.messages_duplicated")),
      c_reordered_(inner_->metrics().counter("net.messages_reordered")),
      c_delayed_(inner_->metrics().counter("net.messages_delayed")) {}

ChaosTransport::~ChaosTransport() = default;

TransportStats ChaosTransport::stats() const {
  TransportStats s = inner_->stats();
  // Messages the chaos layer drops never reach the backend, but the
  // protocol did send them — keep messages_sent meaning "send() calls",
  // exactly as on the loopback.
  s.messages_sent += c_dropped_loss_.value() + c_dropped_partition_.value();
  s.messages_dropped_loss += c_dropped_loss_.value();
  s.messages_dropped_partition += c_dropped_partition_.value();
  s.messages_duplicated += c_duplicated_.value();
  s.messages_reordered += c_reordered_.value();
  s.messages_delayed += c_delayed_.value();
  return s;
}

// ---- crash-era core ------------------------------------------------------

void ChaosTransport::set_link_latency(
    NodeId a, NodeId b, std::shared_ptr<sim::DurationDistribution> latency) {
  AQUEDUCT_CHECK(latency != nullptr);
  link_delay_[{a, b}] = latency;
  link_delay_[{b, a}] = std::move(latency);
}

void ChaosTransport::set_node_latency(
    NodeId node, std::shared_ptr<sim::DurationDistribution> latency) {
  AQUEDUCT_CHECK(latency != nullptr);
  node_delay_[node] = std::move(latency);
}

void ChaosTransport::clear_node_latency(NodeId node) { node_delay_.erase(node); }

void ChaosTransport::set_loss_probability(double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
}

void ChaosTransport::set_link_loss(NodeId from, NodeId to, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  link_loss_[{from, to}] = p;
}

void ChaosTransport::clear_link_loss(NodeId from, NodeId to) {
  link_loss_.erase({from, to});
}

void ChaosTransport::set_inbound_loss(NodeId node, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) {
    inbound_loss_.erase(node);
  } else {
    inbound_loss_[node] = p;
  }
}

void ChaosTransport::set_outbound_loss(NodeId node, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) {
    outbound_loss_.erase(node);
  } else {
    outbound_loss_[node] = p;
  }
}

double ChaosTransport::loss_probability(NodeId from, NodeId to) const {
  // Same composition as the loopback: a per-link override is
  // authoritative, otherwise the pessimistic max of outbound, inbound,
  // and global loss governs.
  if (auto it = link_loss_.find({from, to}); it != link_loss_.end()) {
    return it->second;
  }
  double p = loss_probability_;
  if (auto it = outbound_loss_.find(from); it != outbound_loss_.end()) {
    p = std::max(p, it->second);
  }
  if (auto it = inbound_loss_.find(to); it != inbound_loss_.end()) {
    p = std::max(p, it->second);
  }
  return p;
}

void ChaosTransport::partition(std::vector<NodeId> side_a,
                               std::vector<NodeId> side_b) {
  partition_a_.clear();
  partition_b_.clear();
  partition_a_.insert(side_a.begin(), side_a.end());
  partition_b_.insert(side_b.begin(), side_b.end());
}

void ChaosTransport::heal() {
  partition_a_.clear();
  partition_b_.clear();
  blackholes_.clear();
}

bool ChaosTransport::partitioned(NodeId a, NodeId b) const {
  if (blackholes_.contains({a, b})) return true;
  const bool a_in_a = partition_a_.contains(a);
  const bool a_in_b = partition_b_.contains(a);
  const bool b_in_a = partition_a_.contains(b);
  const bool b_in_b = partition_b_.contains(b);
  return (a_in_a && b_in_b) || (a_in_b && b_in_a);
}

// ---- gray-failure surface ------------------------------------------------

void ChaosTransport::set_default_delay(
    std::shared_ptr<sim::DurationDistribution> extra) {
  default_delay_ = std::move(extra);
}

void ChaosTransport::set_link_delay(
    NodeId from, NodeId to, std::shared_ptr<sim::DurationDistribution> extra) {
  AQUEDUCT_CHECK(extra != nullptr);
  link_delay_[{from, to}] = std::move(extra);
}

void ChaosTransport::clear_link_delay(NodeId from, NodeId to) {
  link_delay_.erase({from, to});
}

void ChaosTransport::set_duplicate_probability(double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  duplicate_probability_ = p;
}

void ChaosTransport::set_link_duplicate(NodeId from, NodeId to, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  link_duplicate_[{from, to}] = p;
}

void ChaosTransport::clear_link_duplicate(NodeId from, NodeId to) {
  link_duplicate_.erase({from, to});
}

double ChaosTransport::duplicate_probability(NodeId from, NodeId to) const {
  if (auto it = link_duplicate_.find({from, to}); it != link_duplicate_.end()) {
    return it->second;
  }
  return duplicate_probability_;
}

void ChaosTransport::set_reorder_probability(double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  reorder_probability_ = p;
}

void ChaosTransport::set_reorder_window(sim::Duration window) {
  AQUEDUCT_CHECK(window > sim::Duration::zero());
  reorder_window_ = window;
}

void ChaosTransport::set_link_throttle(NodeId from, NodeId to,
                                       sim::Duration min_gap) {
  AQUEDUCT_CHECK(min_gap >= sim::Duration::zero());
  if (min_gap == sim::Duration::zero()) {
    throttle_gap_.erase({from, to});
    throttle_next_free_.erase({from, to});
  } else {
    throttle_gap_[{from, to}] = min_gap;
  }
}

void ChaosTransport::partial_partition(NodeId a, NodeId b) {
  blackholes_.insert({a, b});
  blackholes_.insert({b, a});
}

void ChaosTransport::heal_link(NodeId a, NodeId b) {
  for (const Link& link : {Link{a, b}, Link{b, a}}) {
    blackholes_.erase(link);
    link_delay_.erase(link);
    link_loss_.erase(link);
    link_duplicate_.erase(link);
    throttle_gap_.erase(link);
    throttle_next_free_.erase(link);
  }
}

void ChaosTransport::heal_gray() {
  loss_probability_ = 0.0;
  link_loss_.clear();
  inbound_loss_.clear();
  outbound_loss_.clear();
  partition_a_.clear();
  partition_b_.clear();
  blackholes_.clear();
  default_delay_.reset();
  link_delay_.clear();
  node_delay_.clear();
  duplicate_probability_ = 0.0;
  link_duplicate_.clear();
  reorder_probability_ = 0.0;
  throttle_gap_.clear();
  throttle_next_free_.clear();
}

// ---- send pipeline -------------------------------------------------------

sim::Duration ChaosTransport::sample_extra_delay(NodeId from, NodeId to) {
  if (auto it = link_delay_.find({from, to}); it != link_delay_.end()) {
    return it->second->sample(rng_);
  }
  auto f = node_delay_.find(from);
  auto t = node_delay_.find(to);
  if (f != node_delay_.end() || t != node_delay_.end()) {
    sim::Duration d = sim::Duration::zero();
    if (f != node_delay_.end()) d = std::max(d, f->second->sample(rng_));
    if (t != node_delay_.end()) d = std::max(d, t->second->sample(rng_));
    return d;
  }
  if (default_delay_ != nullptr) return default_delay_->sample(rng_);
  return sim::Duration::zero();
}

void ChaosTransport::forward_copy(NodeId from, NodeId to, MessagePtr msg) {
  sim::Duration extra = std::max(sim::Duration::zero(),
                                 sample_extra_delay(from, to));
  if (reorder_probability_ > 0.0 && rng_.bernoulli(reorder_probability_)) {
    extra += sim::from_ms(rng_.uniform(0.0, sim::to_ms(reorder_window_)));
    c_reordered_.inc();
  }
  if (auto it = throttle_gap_.find({from, to}); it != throttle_gap_.end()) {
    const sim::TimePoint now = exec_.now();
    sim::TimePoint ready = now + extra;
    if (auto nf = throttle_next_free_.find({from, to});
        nf != throttle_next_free_.end()) {
      ready = std::max(ready, nf->second);
    }
    throttle_next_free_[{from, to}] = ready + it->second;
    extra = ready - now;
  }
  if (extra <= sim::Duration::zero()) {
    inner_->send(from, to, std::move(msg));
    return;
  }
  c_delayed_.inc();
  exec_.after(extra, [this, weak = std::weak_ptr<const bool>(alive_), from, to,
                      msg = std::move(msg)] {
    if (weak.expired()) return;
    inner_->send(from, to, msg);
  });
}

void ChaosTransport::send(NodeId from, NodeId to, MessagePtr msg) {
  AQUEDUCT_CHECK(msg != nullptr);
  if (partitioned(from, to)) {
    c_dropped_partition_.inc();
    return;
  }
  const double loss = loss_probability(from, to);
  if (loss > 0.0 && rng_.bernoulli(loss)) {
    c_dropped_loss_.inc();
    return;
  }
  const double dup = duplicate_probability(from, to);
  const bool duplicate = dup > 0.0 && rng_.bernoulli(dup);
  if (duplicate) c_duplicated_.inc();
  forward_copy(from, to, msg);
  if (duplicate) forward_copy(from, to, std::move(msg));
}

std::unique_ptr<Transport> make_chaos_transport(
    std::unique_ptr<Transport> inner) {
  AQUEDUCT_CHECK(inner != nullptr);
  return std::make_unique<ChaosTransport>(std::move(inner));
}

}  // namespace aqueduct::net
