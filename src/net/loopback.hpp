// In-process loopback backend of net::Transport: point-to-point message
// delivery through the executor's timer queue with configurable latency
// models, probabilistic loss, partitions, and node crashes.
//
// Under a SimExecutor this is the simulated LAN every experiment runs on
// (delivery in virtual time, deterministic per seed); under a
// RealTimeExecutor the same code delivers after real wall-clock latency.
// Messages travel as shared pointers — nothing is serialized, so the
// simulated trajectory is byte-identical to what it was before the
// Transport split.
//
// Only composition roots (tests, benches, examples, tools) may include
// this header; protocol layers build loopbacks through
// net::make_loopback_transport() and inject faults through the
// FaultInjection interface (tools/check_layering.py enforces this).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/transport.hpp"

namespace aqueduct::net {

class LoopbackTransport final : public Transport, public FaultInjection {
 public:
  /// `default_latency` is sampled independently per message for every link
  /// without an explicit override.
  LoopbackTransport(runtime::Executor& exec,
                    std::unique_ptr<sim::DurationDistribution> default_latency);

  // ---- Transport ----
  NodeId attach(Endpoint& endpoint) override;
  void detach(NodeId id) override;
  bool is_attached(NodeId id) const override { return endpoints_.contains(id); }
  /// Delivery is scheduled after a latency sample.
  void send(NodeId from, NodeId to, MessagePtr msg) override;
  TransportStats stats() const override;
  obs::Observability& observability() override { return obs_; }
  runtime::Executor& executor() override { return exec_; }
  FaultInjection* fault_injection() override { return this; }

  // ---- FaultInjection ----
  void set_link_latency(
      NodeId a, NodeId b,
      std::shared_ptr<sim::DurationDistribution> latency) override;
  void set_node_latency(
      NodeId node, std::shared_ptr<sim::DurationDistribution> latency) override;
  void clear_node_latency(NodeId node) override;
  void set_loss_probability(double p) override;
  void set_link_loss(NodeId from, NodeId to, double p) override;
  void clear_link_loss(NodeId from, NodeId to) override;
  void set_inbound_loss(NodeId node, double p) override;
  void set_outbound_loss(NodeId node, double p) override;
  double loss_probability(NodeId from, NodeId to) const override;
  void partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b) override;
  void heal() override;

 private:
  sim::Duration sample_latency(NodeId from, NodeId to);
  bool partitioned(NodeId a, NodeId b) const;
  void tap(NodeId from, NodeId to, const MessagePtr& msg, const char* dropped);

  struct PairHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& p) const noexcept {
      return std::hash<NodeId>{}(p.first) * 1000003u ^ std::hash<NodeId>{}(p.second);
    }
  };

  runtime::Executor& exec_;
  sim::Rng rng_;
  std::unique_ptr<sim::DurationDistribution> default_latency_;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<std::pair<NodeId, NodeId>,
                     std::shared_ptr<sim::DurationDistribution>, PairHash>
      link_latency_;
  std::unordered_map<NodeId, std::shared_ptr<sim::DurationDistribution>>
      node_latency_;
  double loss_probability_ = 0.0;
  std::unordered_map<std::pair<NodeId, NodeId>, double, PairHash> link_loss_;
  std::unordered_map<NodeId, double> inbound_loss_;
  std::unordered_map<NodeId, double> outbound_loss_;
  std::unordered_set<NodeId> partition_a_;
  std::unordered_set<NodeId> partition_b_;
  std::uint32_t next_id_ = 1;

  obs::Observability obs_;  // must precede the instrument references below
  obs::Counter& c_sent_;
  obs::Counter& c_delivered_;
  obs::Counter& c_dropped_loss_;
  obs::Counter& c_dropped_partition_;
  obs::Counter& c_dropped_detached_;
  obs::Counter& c_bytes_sent_;
  obs::Histogram& h_delivery_latency_ms_;
};

}  // namespace aqueduct::net
