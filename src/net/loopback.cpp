#include "net/loopback.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::net {

LoopbackTransport::LoopbackTransport(
    runtime::Executor& exec,
    std::unique_ptr<sim::DurationDistribution> default_latency)
    : exec_(exec),
      rng_(exec.rng().split()),
      default_latency_(std::move(default_latency)),
      c_sent_(obs_.metrics.counter("net.messages_sent")),
      c_delivered_(obs_.metrics.counter("net.messages_delivered")),
      c_dropped_loss_(obs_.metrics.counter("net.messages_dropped_loss")),
      c_dropped_partition_(obs_.metrics.counter("net.messages_dropped_partition")),
      c_dropped_detached_(obs_.metrics.counter("net.messages_dropped_detached")),
      c_bytes_sent_(obs_.metrics.counter("net.bytes_sent")),
      h_delivery_latency_ms_(obs_.metrics.histogram("net.delivery_latency_ms")) {
  AQUEDUCT_CHECK(default_latency_ != nullptr);
}

TransportStats LoopbackTransport::stats() const {
  TransportStats s;
  s.messages_sent = c_sent_.value();
  s.messages_delivered = c_delivered_.value();
  s.messages_dropped_loss = c_dropped_loss_.value();
  s.messages_dropped_partition = c_dropped_partition_.value();
  s.messages_dropped_detached = c_dropped_detached_.value();
  s.bytes_sent = c_bytes_sent_.value();
  return s;
}

NodeId LoopbackTransport::attach(Endpoint& endpoint) {
  const NodeId id{next_id_++};
  endpoints_.emplace(id, &endpoint);
  return id;
}

void LoopbackTransport::detach(NodeId id) { endpoints_.erase(id); }

void LoopbackTransport::set_link_latency(
    NodeId a, NodeId b, std::shared_ptr<sim::DurationDistribution> latency) {
  AQUEDUCT_CHECK(latency != nullptr);
  link_latency_[{a, b}] = latency;
  link_latency_[{b, a}] = std::move(latency);
}

void LoopbackTransport::set_node_latency(
    NodeId node, std::shared_ptr<sim::DurationDistribution> latency) {
  AQUEDUCT_CHECK(latency != nullptr);
  node_latency_[node] = std::move(latency);
}

void LoopbackTransport::clear_node_latency(NodeId node) { node_latency_.erase(node); }

void LoopbackTransport::set_loss_probability(double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  loss_probability_ = p;
}

void LoopbackTransport::set_link_loss(NodeId from, NodeId to, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  link_loss_[{from, to}] = p;
}

void LoopbackTransport::clear_link_loss(NodeId from, NodeId to) {
  link_loss_.erase({from, to});
}

void LoopbackTransport::set_inbound_loss(NodeId node, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) {
    inbound_loss_.erase(node);
  } else {
    inbound_loss_[node] = p;
  }
}

void LoopbackTransport::set_outbound_loss(NodeId node, double p) {
  AQUEDUCT_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) {
    outbound_loss_.erase(node);
  } else {
    outbound_loss_[node] = p;
  }
}

double LoopbackTransport::loss_probability(NodeId from, NodeId to) const {
  // A per-link override is authoritative (it can also *lower* loss below
  // the node/global level); otherwise the pessimistic max of the sender's
  // outbound, the receiver's inbound, and the global probability governs.
  if (auto it = link_loss_.find({from, to}); it != link_loss_.end()) {
    return it->second;
  }
  double p = loss_probability_;
  if (auto it = outbound_loss_.find(from); it != outbound_loss_.end()) {
    p = std::max(p, it->second);
  }
  if (auto it = inbound_loss_.find(to); it != inbound_loss_.end()) {
    p = std::max(p, it->second);
  }
  return p;
}

void LoopbackTransport::partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b) {
  partition_a_.clear();
  partition_b_.clear();
  partition_a_.insert(side_a.begin(), side_a.end());
  partition_b_.insert(side_b.begin(), side_b.end());
}

void LoopbackTransport::heal() {
  partition_a_.clear();
  partition_b_.clear();
}

bool LoopbackTransport::partitioned(NodeId a, NodeId b) const {
  const bool a_in_a = partition_a_.contains(a);
  const bool a_in_b = partition_b_.contains(a);
  const bool b_in_a = partition_a_.contains(b);
  const bool b_in_b = partition_b_.contains(b);
  return (a_in_a && b_in_b) || (a_in_b && b_in_a);
}

sim::Duration LoopbackTransport::sample_latency(NodeId from, NodeId to) {
  if (auto it = link_latency_.find({from, to}); it != link_latency_.end()) {
    return it->second->sample(rng_);
  }
  // Node overrides compose additively on top of nothing else: if either
  // endpoint has a node-level model, the slower of the two governs.
  auto f = node_latency_.find(from);
  auto t = node_latency_.find(to);
  if (f != node_latency_.end() || t != node_latency_.end()) {
    sim::Duration d = sim::Duration::zero();
    if (f != node_latency_.end()) d = std::max(d, f->second->sample(rng_));
    if (t != node_latency_.end()) d = std::max(d, t->second->sample(rng_));
    return d;
  }
  return default_latency_->sample(rng_);
}

void LoopbackTransport::tap(NodeId from, NodeId to, const MessagePtr& msg,
                  const char* dropped) {
  if (!obs_.trace.active()) return;
  obs::MessageEvent event;
  event.at = exec_.now();
  event.from = from;
  event.to = to;
  event.type_name = msg->type_name();
  event.wire_size = msg->wire_size();
  event.dropped = dropped;
  obs_.trace.message(event);
}

void LoopbackTransport::send(NodeId from, NodeId to, MessagePtr msg) {
  AQUEDUCT_CHECK(msg != nullptr);
  AQUEDUCT_CHECK_MSG(from.valid() && to.valid(), "send with invalid node id");
  c_sent_.inc();
  c_bytes_sent_.inc(msg->wire_size());
  if (!endpoints_.contains(from)) {
    // A detached (crashed) node cannot send.
    c_dropped_detached_.inc();
    tap(from, to, msg, "detached");
    return;
  }
  if (partitioned(from, to)) {
    c_dropped_partition_.inc();
    tap(from, to, msg, "partition");
    return;
  }
  const double loss = loss_probability(from, to);
  if (loss > 0.0 && rng_.bernoulli(loss)) {
    c_dropped_loss_.inc();
    tap(from, to, msg, "loss");
    return;
  }
  tap(from, to, msg, "");
  const sim::Duration latency = sample_latency(from, to);
  h_delivery_latency_ms_.observe(sim::to_ms(latency));
  exec_.after(latency, [this, from, to, msg = std::move(msg)] {
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      c_dropped_detached_.inc();
      return;
    }
    c_delivered_.inc();
    it->second->on_message(from, msg);
  });
}

std::unique_ptr<Transport> make_loopback_transport(
    runtime::Executor& exec,
    std::unique_ptr<sim::DurationDistribution> default_latency) {
  return std::make_unique<LoopbackTransport>(exec, std::move(default_latency));
}

}  // namespace aqueduct::net
