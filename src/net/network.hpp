// Simulated LAN: point-to-point message delivery with configurable latency
// models, probabilistic loss, partitions, and node crashes.
//
// The network provides *no* ordering or reliability guarantees beyond what
// the latency model implies — messages can be reordered (variable latency)
// and dropped (loss/partition). Reliable virtually synchronous FIFO
// delivery is built on top by the gcs layer, exactly as AQuA builds on
// Maestro/Ensemble over a physical LAN.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"
#include "net/node.hpp"
#include "obs/observability.hpp"
#include "runtime/executor.hpp"
#include "sim/random.hpp"

namespace aqueduct::net {

/// Implemented by anything that can receive messages from the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Invoked (on the simulator thread, at the delivery time) for each
  /// message addressed to this endpoint.
  virtual void on_message(NodeId from, MessagePtr msg) = 0;
};

/// One observed delivery/drop, for protocol-overhead accounting and
/// debugging traces. Alias of the obs-layer event so existing taps and the
/// multi-subscriber TraceSink pipeline share one type.
using TraceEvent = obs::MessageEvent;

/// Snapshot of the network counters (assembled from the registry-backed
/// instruments; see metrics "net.*").
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_loss = 0;
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_detached = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  /// `default_latency` is sampled independently per message for every link
  /// without an explicit override. Under a SimExecutor delivery happens in
  /// virtual time; under a RealTimeExecutor the same code is a loopback
  /// transport — delivery callbacks fire after real wall-clock latency.
  Network(runtime::Executor& exec,
          std::unique_ptr<sim::DurationDistribution> default_latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers an endpoint and returns its fresh id. The endpoint must
  /// outlive the network or call detach() first.
  NodeId attach(Endpoint& endpoint);

  /// Removes the endpoint: all in-flight and future messages to or from it
  /// are dropped. Used to model fail-stop crashes.
  void detach(NodeId id);

  bool is_attached(NodeId id) const { return endpoints_.contains(id); }

  /// Overrides the latency model for the (a, b) pair, both directions.
  void set_link_latency(NodeId a, NodeId b,
                        std::shared_ptr<sim::DurationDistribution> latency);

  /// Overrides the latency model for every link touching `node` (both
  /// directions). Models a slow host/NIC, as in the paper's heterogeneous
  /// 300 MHz–1 GHz testbed.
  void set_node_latency(NodeId node,
                        std::shared_ptr<sim::DurationDistribution> latency);

  /// Removes a node-level latency override installed by set_node_latency()
  /// (links fall back to per-link overrides or the default model). Used by
  /// fault schedules to end a latency spike.
  void clear_node_latency(NodeId node);

  /// Probability in [0, 1] that any given message is silently dropped.
  void set_loss_probability(double p);

  /// Directional per-link loss: messages from `from` to `to` (and only in
  /// that direction) are dropped with probability `p`. Overrides node and
  /// global loss for that link. Lets fault schedules degrade a single
  /// replica's links asymmetrically.
  void set_link_loss(NodeId from, NodeId to, double p);

  /// Removes a directional per-link loss override.
  void clear_link_loss(NodeId from, NodeId to);

  /// Loss applied to every message *received* by `node` (unless a per-link
  /// override matches). Composes with outbound/global loss via max.
  void set_inbound_loss(NodeId node, double p);

  /// Loss applied to every message *sent* by `node` (unless a per-link
  /// override matches). Composes with inbound/global loss via max.
  void set_outbound_loss(NodeId node, double p);

  /// Effective drop probability the send path would use for (from, to).
  double loss_probability(NodeId from, NodeId to) const;

  /// Drops all traffic between the two sides until heal() is called.
  /// Nodes in neither set communicate normally with everyone.
  void partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b);

  /// Removes any active partition.
  void heal();

  /// Sends `msg` from `from` to `to`; delivery is scheduled after a latency
  /// sample. Sending to a detached node silently drops (the sender cannot
  /// know the destination crashed — that is the failure detector's job).
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Sends to each destination individually (unreliable multicast).
  void multicast(NodeId from, const std::vector<NodeId>& to, const MessagePtr& msg);

  NetworkStats stats() const;

  /// Per-simulation observability context. The network owns it because it
  /// is the one object every process of a simulation shares.
  obs::Observability& observability() { return obs_; }
  obs::MetricsRegistry& metrics() { return obs_.metrics; }
  obs::TraceHub& tracing() { return obs_.trace; }

  runtime::Executor& executor() { return exec_; }

 private:
  sim::Duration sample_latency(NodeId from, NodeId to);
  bool partitioned(NodeId a, NodeId b) const;
  void tap(NodeId from, NodeId to, const MessagePtr& msg, const char* dropped);

  struct PairHash {
    std::size_t operator()(const std::pair<NodeId, NodeId>& p) const noexcept {
      return std::hash<NodeId>{}(p.first) * 1000003u ^ std::hash<NodeId>{}(p.second);
    }
  };

  runtime::Executor& exec_;
  sim::Rng rng_;
  std::unique_ptr<sim::DurationDistribution> default_latency_;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<std::pair<NodeId, NodeId>,
                     std::shared_ptr<sim::DurationDistribution>, PairHash>
      link_latency_;
  std::unordered_map<NodeId, std::shared_ptr<sim::DurationDistribution>>
      node_latency_;
  double loss_probability_ = 0.0;
  std::unordered_map<std::pair<NodeId, NodeId>, double, PairHash> link_loss_;
  std::unordered_map<NodeId, double> inbound_loss_;
  std::unordered_map<NodeId, double> outbound_loss_;
  std::unordered_set<NodeId> partition_a_;
  std::unordered_set<NodeId> partition_b_;
  std::uint32_t next_id_ = 1;

  obs::Observability obs_;  // must precede the instrument references below
  obs::Counter& c_sent_;
  obs::Counter& c_delivered_;
  obs::Counter& c_dropped_loss_;
  obs::Counter& c_dropped_partition_;
  obs::Counter& c_dropped_detached_;
  obs::Counter& c_bytes_sent_;
  obs::Histogram& h_delivery_latency_ms_;
};

}  // namespace aqueduct::net
