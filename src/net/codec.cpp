#include "net/codec.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace aqueduct::net {

void Message::encode(Writer&) const {
  throw CodecError("message type '" + type_name() + "' is not codec-enabled");
}

std::size_t Message::wire_size() const {
  if (wire_type() == 0) return 64;  // nominal size for non-wire types
  try {
    Writer w;
    encode_frame(*this, w);
    return w.size();
  } catch (const CodecError&) {
    // A codec-enabled envelope carrying a non-encodable payload (tests
    // wrap ad-hoc local messages in gcs frames): fall back to the nominal
    // estimate rather than poison bandwidth accounting.
    return 64;
  }
}

CodecRegistry& CodecRegistry::global() {
  static CodecRegistry registry;
  return registry;
}

void CodecRegistry::add(WireTypeId id, std::string type_name, DecodeFn decode) {
  AQUEDUCT_CHECK_MSG(id != 0, "wire type id 0 is reserved");
  auto [it, inserted] = entries_.emplace(id, Entry{std::move(type_name), decode});
  if (!inserted) {
    // Idempotent re-registration (several composition roots may register
    // the same layer); a *different* decoder under the same id is a
    // protocol-definition bug.
    AQUEDUCT_CHECK_MSG(it->second.decode == decode,
                       "conflicting decoder for wire type id");
  }
}

std::vector<WireTypeId> CodecRegistry::ids() const {
  std::vector<WireTypeId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

void encode_frame(const Message& msg, Writer& w) {
  const WireTypeId id = msg.wire_type();
  if (id == 0) {
    throw CodecError("message type '" + msg.type_name() +
                     "' is not codec-enabled");
  }
  w.u32(kWireMagic);
  w.u8(kWireVersion);
  w.u32(id);
  const std::size_t len_offset = w.size();
  w.u32(0);  // payload length, patched below
  const std::size_t body_start = w.size();
  msg.encode(w);
  w.patch_u32(len_offset, static_cast<std::uint32_t>(w.size() - body_start));
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  Writer w;
  encode_frame(msg, w);
  return w.bytes();
}

MessagePtr decode_frame(Reader& r, const CodecRegistry& registry) {
  if (r.u32() != kWireMagic) throw CodecError("bad frame magic");
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    throw CodecError("unsupported wire version " + std::to_string(version));
  }
  const WireTypeId id = r.u32();
  const std::uint32_t len = r.u32();
  if (len > r.remaining()) throw CodecError("frame length exceeds input");
  const CodecRegistry::DecodeFn decode = registry.find(id);
  if (decode == nullptr) {
    throw CodecError("unknown wire type id " + std::to_string(id));
  }
  Reader body = r.sub(len);
  MessagePtr msg = decode(body);
  AQUEDUCT_CHECK(msg != nullptr);
  if (!body.done()) throw CodecError("decoder left trailing payload bytes");
  return msg;
}

void encode_nested(Writer& w, const MessagePtr& msg) {
  w.boolean(msg != nullptr);
  if (msg) encode_frame(*msg, w);
}

MessagePtr decode_nested(Reader& r, const CodecRegistry& registry) {
  if (!r.boolean()) return nullptr;
  return decode_frame(r, registry);
}

}  // namespace aqueduct::net
