#include "client/handler.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::client {

namespace {
/// How long a completed request's bookkeeping lingers so late replies from
/// the other selected replicas still contribute t_g / ert measurements.
constexpr sim::Duration kLinger = std::chrono::seconds(10);
}  // namespace

ClientHandler::Instruments::Instruments(obs::MetricsRegistry& reg)
    : reads_issued(reg.counter("client.reads_issued")),
      reads_completed(reg.counter("client.reads_completed")),
      reads_abandoned(reg.counter("client.reads_abandoned")),
      updates_issued(reg.counter("client.updates_issued")),
      updates_completed(reg.counter("client.updates_completed")),
      timing_failures(reg.counter("client.timing_failures")),
      deferred_replies(reg.counter("client.deferred_replies")),
      retries(reg.counter("client.retries")),
      transmit_attempts(reg.counter("client.transmit_attempts")),
      retry_backoff_ms(reg.counter("client.retry_backoff_ms")),
      staleness_violations(reg.counter("client.staleness_violations")),
      replicas_selected_total(reg.counter("client.replicas_selected_total")),
      selection_attempts(reg.counter("client.selection_attempts")),
      read_response_ms(reg.histogram("client.read_response_ms")),
      update_response_ms(reg.histogram("client.update_response_ms")),
      gateway_ms(reg.histogram("client.gateway_ms")) {}

ClientHandler::ClientHandler(runtime::Executor& exec, gcs::Endpoint& endpoint,
                             replication::ServiceGroups groups,
                             ClientConfig config)
    : exec_(exec),
      endpoint_(endpoint),
      groups_(groups),
      config_(std::move(config)),
      rng_(exec.rng().split()),
      repository_(config_.window_size, config_.pmf_resolution),
      obs_(endpoint.observability()),
      metrics_(obs_.metrics) {
  if (config_.selector == nullptr) {
    config_.selector = std::make_unique<core::ProbabilisticSelector>();
  }
  AQUEDUCT_CHECK(config_.window_size > 0);
  AQUEDUCT_CHECK(config_.retry_timeout > sim::Duration::zero());
}

ClientHandler::~ClientHandler() = default;

void ClientHandler::start() {
  qos_member_ = &endpoint_.member(groups_.qos);
  qos_member_->set_on_deliver(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_deliver(from, msg);
      });
  qos_member_->join();
}

// ---------------------------------------------------------------------------
// Application entry points
// ---------------------------------------------------------------------------

void ClientHandler::read(net::MessagePtr op, const core::QoSSpec& qos,
                         ReadCallback done) {
  qos.validate();
  AQUEDUCT_CHECK(op != nullptr);
  const sim::TimePoint t0 = exec_.now();
  if (!ready()) {
    pending_.push_back({true, std::move(op), qos, std::move(done), {}, t0});
    return;
  }
  const replication::RequestId id{this->id(), ++next_seq_};
  OutstandingRequest& req = outstanding_[id];
  req.is_read = true;
  req.op = std::move(op);
  req.qos = qos;
  req.read_done = std::move(done);
  req.t0 = t0;
  ++stats_.reads_issued;
  metrics_.reads_issued.inc();
  span(obs::SpanKind::kIssue, id, net::NodeId{},
       static_cast<std::uint64_t>(sim::to_ms(qos.deadline)));
  transmit_read(id, req);
  req.deadline_timer = exec_.at(t0 + qos.deadline, [this, id] { on_deadline(id); });
}

void ClientHandler::update(net::MessagePtr op, UpdateCallback done) {
  AQUEDUCT_CHECK(op != nullptr);
  const sim::TimePoint t0 = exec_.now();
  if (!ready()) {
    pending_.push_back({false, std::move(op), {}, {}, std::move(done), t0});
    return;
  }
  const replication::RequestId id{this->id(), ++next_seq_};
  OutstandingRequest& req = outstanding_[id];
  req.is_read = false;
  req.op = std::move(op);
  req.update_done = std::move(done);
  req.t0 = t0;
  ++stats_.updates_issued;
  metrics_.updates_issued.inc();
  span(obs::SpanKind::kIssue, id, net::NodeId{});
  transmit_update(id, req);
}

void ClientHandler::drain_pending() {
  std::deque<PendingApp> pending;
  pending.swap(pending_);
  for (PendingApp& p : pending) {
    // Re-enter through the public API; t0 conservatively restarts now
    // (start-up transient only).
    if (p.is_read) {
      read(std::move(p.op), p.qos, std::move(p.read_done));
    } else {
      update(std::move(p.op), std::move(p.update_done));
    }
  }
}

// ---------------------------------------------------------------------------
// Transmission and retries
// ---------------------------------------------------------------------------

void ClientHandler::transmit_read(const replication::RequestId& id,
                                  OutstandingRequest& req) {
  const auto& roles = repository_.roles();
  const sim::TimePoint now = exec_.now();

  auto ctx = repository_.selection_context(req.qos, now, rng_);
  auto selection = config_.selector->select(ctx);

  req.replicas_selected = selection.selected.size();
  req.selection_satisfied = selection.satisfied;
  req.predicted_probability = selection.predicted_probability;
  // Every attempt runs a selection; retries count too, so the average
  // reported per attempt matches what the selector actually chose.
  ++stats_.selection_attempts;
  metrics_.selection_attempts.inc();
  stats_.replicas_selected_total += selection.selected.size();
  metrics_.replicas_selected_total.inc(selection.selected.size());

  auto request = std::make_shared<replication::ReadRequest>();
  request->id = id;
  request->op = req.op;
  request->staleness_threshold = req.qos.staleness_threshold;

  req.tm = now;
  ++req.attempts;
  ++stats_.transmit_attempts;
  metrics_.transmit_attempts.inc();
  span(obs::SpanKind::kSend, id, roles.sequencer, selection.selected.size());
  // The selected set K plus the sequencer (Algorithm 1 lines 13/16).
  qos_member_->send_to_set(selection.selected, request);
  if (roles.sequencer.valid() &&
      std::find(selection.selected.begin(), selection.selected.end(),
                roles.sequencer) == selection.selected.end()) {
    qos_member_->send_to(roles.sequencer, request);
  }
  arm_retry(id);
}

void ClientHandler::transmit_update(const replication::RequestId& id,
                                    OutstandingRequest& req) {
  const auto& roles = repository_.roles();
  auto request = std::make_shared<replication::UpdateRequest>();
  request->id = id;
  request->op = req.op;

  req.tm = exec_.now();
  ++req.attempts;
  ++stats_.transmit_attempts;
  metrics_.transmit_attempts.inc();
  span(obs::SpanKind::kSend, id, roles.sequencer, roles.primaries.size() + 1);
  // Updates go to every member of the primary group, sequencer included
  // (Section 4.1.1).
  qos_member_->send_to_set(roles.primaries, request);
  if (roles.sequencer.valid()) qos_member_->send_to(roles.sequencer, request);
  arm_retry(id);
}

void ClientHandler::arm_retry(const replication::RequestId& id) {
  OutstandingRequest& req = outstanding_.at(id);
  exec_.cancel(req.retry_timer);
  // Exponential backoff with seeded jitter: attempt n waits
  // base * factor^(n-1) (capped), scaled by 1 ± U*jitter so concurrent
  // clients don't stampede a recovering service in lockstep.
  const double base_ms = sim::to_ms(config_.retry_timeout);
  const double cap_ms = sim::to_ms(config_.retry_backoff_cap);
  const std::uint32_t exponent = req.attempts > 0 ? req.attempts - 1 : 0;
  double delay_ms = std::min(
      cap_ms, base_ms * std::pow(config_.retry_backoff_factor,
                                 static_cast<double>(exponent)));
  if (config_.retry_jitter > 0.0) {
    delay_ms *= 1.0 + config_.retry_jitter * (2.0 * rng_.uniform() - 1.0);
  }
  delay_ms = std::max(delay_ms, 1.0);
  const auto delay = std::chrono::duration_cast<sim::Duration>(
      std::chrono::duration<double, std::milli>(delay_ms));
  stats_.total_retry_backoff += delay;
  metrics_.retry_backoff_ms.inc(static_cast<std::uint64_t>(delay_ms));
  req.retry_timer = exec_.after(delay, [this, id] { on_retry(id); });
}

void ClientHandler::on_retry(const replication::RequestId& id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end() || it->second.completed) return;
  OutstandingRequest& req = it->second;
  if (req.attempts > config_.max_retries) {
    // Give up: report failure to the application.
    req.completed = true;
    exec_.cancel(req.deadline_timer);
    span(obs::SpanKind::kAbandon, id, net::NodeId{}, req.attempts,
         exec_.now() - req.t0);
    if (req.is_read) {
      ++stats_.reads_abandoned;
      metrics_.reads_abandoned.inc();
      ReadOutcome outcome;
      outcome.response_time = exec_.now() - req.t0;
      outcome.timing_failure = true;
      outcome.replicas_selected = req.replicas_selected;
      outcome.selection_satisfied = req.selection_satisfied;
      outcome.predicted_probability = req.predicted_probability;
      obs_.sla.record_read(
          this->id(),
          obs::SlaSpec{req.qos.staleness_threshold, req.qos.deadline,
                       req.qos.min_probability},
          exec_.now(), /*timing_failure=*/true, /*staleness=*/0, req.attempts,
          config_.shard);
      if (req.read_done) req.read_done(outcome);
    } else if (req.update_done) {
      UpdateOutcome outcome;
      outcome.response_time = exec_.now() - req.t0;
      req.update_done(outcome);
    }
    outstanding_.erase(it);
    return;
  }
  ++stats_.retries;
  metrics_.retries.inc();
  span(obs::SpanKind::kRetry, id, net::NodeId{}, req.attempts);
  if (req.is_read) {
    transmit_read(id, req);
  } else {
    transmit_update(id, req);
  }
}

void ClientHandler::on_deadline(const replication::RequestId& id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end() || it->second.completed) return;
  // No response within d: a timing failure for this client, regardless of
  // when (or whether) a reply eventually arrives.
  it->second.timing_failure = true;
  span(obs::SpanKind::kTimingFailure, id, net::NodeId{}, it->second.attempts,
       exec_.now() - it->second.t0);
}

// ---------------------------------------------------------------------------
// Replies and publications
// ---------------------------------------------------------------------------

void ClientHandler::on_deliver(net::NodeId /*from*/, const net::MessagePtr& msg) {
  const sim::TimePoint now = exec_.now();
  if (auto reply = net::message_cast<replication::Reply>(msg)) {
    handle_reply(reply);
  } else if (auto perf = net::message_cast<replication::PerfPublication>(msg)) {
    repository_.record_publication(*perf, now);
  } else if (auto info = net::message_cast<replication::GroupInfo>(msg)) {
    const bool was_ready = ready();
    repository_.record_group_info(*info);
    if (!was_ready && ready()) drain_pending();
  }
}

void ClientHandler::handle_reply(
    const std::shared_ptr<const replication::Reply>& reply) {
  auto it = outstanding_.find(reply->id);
  if (it == outstanding_.end()) return;  // linger expired
  OutstandingRequest& req = it->second;

  // Gateway-delay measurement: t_g = t_p - t_m - t_1 (Section 5.4). A reply
  // from an earlier attempt can make this negative after a retry; clamp.
  const sim::TimePoint tp = exec_.now();
  const sim::Duration tg =
      std::max(sim::Duration::zero(), (tp - req.tm) - reply->t1);
  repository_.record_reply(reply->replica, tg, tp);
  metrics_.gateway_ms.observe(sim::to_ms(tg));
  span(obs::SpanKind::kReceive, reply->id, reply->replica,
       req.completed ? 1 : 0, tp - req.tm);

  if (req.completed) return;  // later replies only feed the repository
  req.completed = true;
  exec_.cancel(req.retry_timer);
  exec_.cancel(req.deadline_timer);

  if (req.is_read) {
    complete_read(reply->id, req, reply.get());
  } else {
    ++stats_.updates_completed;
    metrics_.updates_completed.inc();
    stats_.total_update_response_time += tp - req.t0;
    metrics_.update_response_ms.observe(sim::to_ms(tp - req.t0));
    UpdateOutcome outcome;
    outcome.result = reply->result;
    outcome.response_time = tp - req.t0;
    span(obs::SpanKind::kComplete, reply->id, reply->replica, 0,
         outcome.response_time);
    emit_breakdown(reply->id, req, *reply, outcome.response_time, false);
    if (req.update_done) req.update_done(outcome);
  }
  forget_later(reply->id);
}

void ClientHandler::complete_read(const replication::RequestId& id,
                                  OutstandingRequest& req,
                                  const replication::Reply* reply) {
  const sim::Duration tr = exec_.now() - req.t0;
  ReadOutcome outcome;
  outcome.result = reply->result;
  outcome.response_time = tr;
  outcome.timing_failure = req.timing_failure || tr > req.qos.deadline;
  outcome.deferred = reply->deferred;
  outcome.staleness = reply->staleness;
  outcome.responder = reply->replica;
  outcome.replicas_selected = req.replicas_selected;
  outcome.selection_satisfied = req.selection_satisfied;
  outcome.predicted_probability = req.predicted_probability;
  // Breakdown per Eq. 5/6: the server components are piggybacked on the
  // reply; the gateway delay is the exact remainder so the parts always
  // sum to response_time.
  outcome.client_overhead = req.tm - req.t0;
  outcome.service = reply->ts;
  outcome.queueing = reply->tq;
  outcome.lazy_wait = reply->tb;
  outcome.gateway = tr - outcome.client_overhead - reply->ts - reply->tq -
                    reply->tb;

  ++stats_.reads_completed;
  metrics_.reads_completed.inc();
  stats_.total_response_time += tr;
  metrics_.read_response_ms.observe(sim::to_ms(tr));
  if (outcome.timing_failure) {
    ++stats_.timing_failures;
    metrics_.timing_failures.inc();
  } else {
    ++timely_reads_;
  }
  if (outcome.deferred) {
    ++stats_.deferred_replies;
    metrics_.deferred_replies.inc();
  }
  if (outcome.staleness > req.qos.staleness_threshold) {
    ++stats_.staleness_violations;
    metrics_.staleness_violations.inc();
  }
  span(obs::SpanKind::kComplete, id, reply->replica,
       outcome.timing_failure ? 1 : 0, tr);
  emit_breakdown(id, req, *reply, tr, outcome.timing_failure);
  obs_.sla.record_read(
      this->id(),
      obs::SlaSpec{req.qos.staleness_threshold, req.qos.deadline,
                   req.qos.min_probability},
      exec_.now(), outcome.timing_failure, outcome.staleness, req.attempts,
      config_.shard);
  check_alarm(req.qos);
  if (req.read_done) req.read_done(outcome);
}

void ClientHandler::check_alarm(const core::QoSSpec& qos) {
  if (!alarm_ || stats_.reads_completed == 0) return;
  const double timely_rate = static_cast<double>(timely_reads_) /
                             static_cast<double>(stats_.reads_completed);
  if (timely_rate < qos.min_probability) {
    alarm_(1.0 - timely_rate);
  }
}

void ClientHandler::forget_later(const replication::RequestId& id) {
  exec_.after(kLinger, [this, id] { outstanding_.erase(id); });
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void ClientHandler::span(obs::SpanKind kind, const replication::RequestId& id,
                         net::NodeId peer, std::uint64_t value,
                         sim::Duration duration) {
  if (!obs_.trace.active()) return;
  obs::SpanEvent event;
  event.trace = replication::trace_of(id);
  event.kind = kind;
  event.at = exec_.now();
  event.duration = duration;
  event.node = this->id();
  event.peer = peer;
  event.value = value;
  obs_.trace.span(event);
}

void ClientHandler::emit_breakdown(const replication::RequestId& id,
                                   const OutstandingRequest& req,
                                   const replication::Reply& reply,
                                   sim::Duration total, bool timing_failure) {
  if (!obs_.trace.active()) return;
  obs::BreakdownEvent event;
  event.trace = replication::trace_of(id);
  event.at = exec_.now();
  event.client = this->id();
  event.replica = reply.replica;
  event.is_read = req.is_read;
  event.deferred = reply.deferred;
  event.timing_failure = timing_failure;
  event.total = total;
  event.client_overhead = req.tm - req.t0;
  event.queueing = reply.tq;
  event.service = reply.ts;
  event.lazy_wait = reply.tb;
  // Exact remainder — the breakdown always sums to `total`.
  event.gateway = total - event.client_overhead - event.queueing -
                  event.service - event.lazy_wait;
  obs_.trace.breakdown(event);
}

}  // namespace aqueduct::client
