#include "client/fifo_handler.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::client {

FifoClientHandler::FifoClientHandler(runtime::Executor& exec,
                                     gcs::Endpoint& endpoint,
                                     replication::ServiceGroups groups,
                                     std::size_t window_size)
    : exec_(exec),
      endpoint_(endpoint),
      groups_(groups),
      rng_(exec.rng().split()),
      repository_(window_size, std::chrono::milliseconds(1)) {}

void FifoClientHandler::start() {
  qos_member_ = &endpoint_.member(groups_.qos);
  qos_member_->set_on_deliver(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_deliver(from, msg);
      });
  qos_member_->join();
}

void FifoClientHandler::update(net::MessagePtr op, UpdateCallback done) {
  AQUEDUCT_CHECK(op != nullptr);
  if (!has_roles_) {
    pending_.push_back([this, op = std::move(op), done = std::move(done)]() mutable {
      update(std::move(op), std::move(done));
    });
    return;
  }
  const replication::RequestId id{this->id(), ++next_seq_};
  my_update_horizon_ = id.seq;
  Outstanding& req = outstanding_[id];
  req.is_read = false;
  req.update_done = std::move(done);
  req.t0 = exec_.now();
  req.tm = req.t0;

  auto request = std::make_shared<replication::FifoUpdateRequest>();
  request->id = id;
  request->op = std::move(op);
  qos_member_->send_to_set(roles_.primaries, request);
}

void FifoClientHandler::read(net::MessagePtr op, const core::QoSSpec& qos,
                             bool read_your_writes, ReadCallback done) {
  qos.validate();
  AQUEDUCT_CHECK(op != nullptr);
  if (!has_roles_) {
    pending_.push_back([this, op = std::move(op), qos, read_your_writes,
                        done = std::move(done)]() mutable {
      read(std::move(op), qos, read_your_writes, std::move(done));
    });
    return;
  }
  const replication::RequestId id{this->id(), ++next_seq_};
  Outstanding& req = outstanding_[id];
  req.is_read = true;
  req.qos = qos;
  req.read_done = std::move(done);
  req.t0 = exec_.now();
  req.tm = req.t0;

  // FIFO consistency has no global staleness: the stale factor is 1; the
  // deferred-read distributions still account for read-your-writes waits.
  core::SelectionContext ctx;
  ctx.candidates = repository_.candidates(qos, exec_.now());
  ctx.stale_factor = 1.0;
  ctx.qos = qos;
  ctx.now = exec_.now();
  ctx.rng = &rng_;
  auto selection = selector_.select(ctx);
  req.replicas_selected = selection.selected.size();

  auto request = std::make_shared<replication::FifoReadRequest>();
  request->id = id;
  request->op = std::move(op);
  request->horizon = read_your_writes ? my_update_horizon_ : 0;
  qos_member_->send_to_set(selection.selected, request);

  req.deadline_timer = exec_.at(req.t0 + qos.deadline, [this, id] {
    auto it = outstanding_.find(id);
    if (it != outstanding_.end() && !it->second.completed) {
      it->second.timing_failure = true;
    }
  });
}

void FifoClientHandler::drain_pending() {
  std::deque<std::function<void()>> pending;
  pending.swap(pending_);
  for (auto& fn : pending) fn();
}

void FifoClientHandler::on_deliver(net::NodeId /*from*/,
                                   const net::MessagePtr& msg) {
  const sim::TimePoint now = exec_.now();
  if (auto reply = net::message_cast<replication::FifoReply>(msg)) {
    auto it = outstanding_.find(reply->id);
    if (it == outstanding_.end()) return;
    Outstanding& req = it->second;
    const sim::Duration tg =
        std::max(sim::Duration::zero(), (now - req.tm) - reply->t1);
    repository_.record_reply(reply->replica, tg, now);
    if (req.completed) return;
    req.completed = true;
    exec_.cancel(req.deadline_timer);
    const sim::Duration tr = now - req.t0;
    if (req.is_read) {
      FifoReadOutcome outcome;
      outcome.result = reply->result;
      outcome.response_time = tr;
      outcome.timing_failure = req.timing_failure || tr > req.qos.deadline;
      outcome.deferred = reply->deferred;
      outcome.responder = reply->replica;
      outcome.replicas_selected = req.replicas_selected;
      ++stats_.reads_completed;
      stats_.replicas_selected_total += req.replicas_selected;
      if (outcome.timing_failure) ++stats_.timing_failures;
      if (req.read_done) req.read_done(outcome);
    } else {
      ++stats_.updates_completed;
      if (req.update_done) req.update_done(tr);
    }
    outstanding_.erase(it);
  } else if (auto perf = net::message_cast<replication::PerfPublication>(msg)) {
    repository_.record_publication(*perf, now);
  } else if (auto info = net::message_cast<replication::FifoGroupInfo>(msg)) {
    if (has_roles_ && info->epoch <= roles_.epoch) return;
    roles_ = *info;
    // Selection candidates come from the repository's GroupInfo; adapt the
    // FIFO role map into the sequential one (no sequencer).
    replication::GroupInfo compat;
    compat.epoch = info->epoch;
    compat.primaries = info->primaries;
    compat.secondaries = info->secondaries;
    compat.lazy_publisher = info->lazy_publisher;
    repository_.record_group_info(compat);
    const bool first = !has_roles_;
    has_roles_ = true;
    if (first) drain_pending();
  }
}

}  // namespace aqueduct::client
