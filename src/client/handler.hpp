// Client-side gateway handler (paper Sections 5.3 and 5.4).
//
// Transparently intercepts the application's requests:
//   * update operations are multicast to the whole primary group (the
//     server handlers order and commit them);
//   * read-only operations trigger probabilistic replica selection
//     (Algorithm 1 by default) and are sent to the chosen subset plus the
//     sequencer; the first reply is delivered to the application.
// It measures t_0/t_m/t_p, recovers the gateway delay from the piggybacked
// t_1, maintains the information repository, detects timing failures, and
// issues the QoS-violation callback when the observed frequency of timely
// responses drops below the client's requested probability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "client/repository.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"
#include "gcs/endpoint.hpp"
#include "obs/observability.hpp"
#include "replication/messages.hpp"
#include "replication/service.hpp"
#include "sim/random.hpp"
#include "runtime/executor.hpp"

namespace aqueduct::client {

struct ClientConfig {
  /// Sliding-window length l for the performance histories.
  std::size_t window_size = 20;
  /// Bucket size for the response-time pmfs.
  sim::Duration pmf_resolution = std::chrono::milliseconds(1);
  /// Replica-selection strategy; defaults to the paper's Algorithm 1.
  std::unique_ptr<core::ReplicaSelector> selector;
  /// Liveness: re-select and re-send a request that got no reply within
  /// this duration (covers crashed replicas / sequencer failover). This is
  /// the *base* of the backoff schedule: attempt n waits
  /// retry_timeout * retry_backoff_factor^(n-1), capped and jittered.
  sim::Duration retry_timeout = std::chrono::seconds(2);
  /// Multiplier applied to the retry delay after every failed attempt.
  double retry_backoff_factor = 2.0;
  /// Upper bound on any single retry delay.
  sim::Duration retry_backoff_cap = std::chrono::seconds(15);
  /// Symmetric jitter fraction (delay scaled by 1 ± U*jitter, seeded from
  /// the client's rng) so clients retrying into the same outage
  /// de-synchronize instead of stampeding the reborn replica.
  double retry_jitter = 0.1;
  /// Give up after this many retries (the outcome reports failure).
  std::uint32_t max_retries = 10;
  /// Shard tag for SLA monitoring in a sharded service: the router sets
  /// the handler's shard index so the monitor keys (client, shard, spec)
  /// and names gauges `sla.c<id>.s<shard>.spec<k>.*`. -1 (unsharded)
  /// keeps the pre-shard key and gauge names bit-for-bit.
  std::int64_t shard = -1;
};

/// Delivered to the application when a read completes (or is abandoned).
struct ReadOutcome {
  /// First reply's result; nullptr if the request was abandoned after
  /// max_retries.
  net::MessagePtr result;
  /// t_r = t_p - t_0 for the first reply (time of abandonment if none).
  sim::Duration response_time = sim::Duration::zero();
  /// True if no response arrived within the requested deadline.
  bool timing_failure = false;
  /// The replying replica performed a deferred read.
  bool deferred = false;
  /// Staleness of the state the reply was served from.
  core::Staleness staleness = 0;
  net::NodeId responder;
  /// |K| — replicas selected (excluding the sequencer).
  std::size_t replicas_selected = 0;
  /// Whether the selection's terminating condition P_K(d) >= Pc(d) held.
  bool selection_satisfied = false;
  /// The model's predicted P_K(d) at selection time.
  double predicted_probability = 0.0;

  // Per-request latency breakdown (paper Eq. 5/6, from the piggybacked
  // t1 decomposition). The components sum exactly to response_time:
  //   response_time == client_overhead + gateway + queueing + service
  //                    + lazy_wait
  // `gateway` is computed as the remainder, so after a retry it can absorb
  // the abandoned attempt and go negative. All zero when abandoned.
  sim::Duration client_overhead = sim::Duration::zero();  // t_m - t_0
  sim::Duration gateway = sim::Duration::zero();          // G (two-way)
  sim::Duration queueing = sim::Duration::zero();         // W
  sim::Duration service = sim::Duration::zero();          // S
  sim::Duration lazy_wait = sim::Duration::zero();        // U
};

struct UpdateOutcome {
  net::MessagePtr result;  // nullptr if abandoned
  sim::Duration response_time = sim::Duration::zero();
};

struct ClientStats {
  std::uint64_t reads_issued = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t reads_abandoned = 0;
  std::uint64_t updates_issued = 0;
  std::uint64_t updates_completed = 0;
  std::uint64_t timing_failures = 0;
  std::uint64_t deferred_replies = 0;
  std::uint64_t retries = 0;
  /// Transmissions performed (initial sends plus retries, reads and
  /// updates alike).
  std::uint64_t transmit_attempts = 0;
  /// Sum of armed retry-backoff delays (how long the backoff schedule kept
  /// this client waiting across all attempts).
  sim::Duration total_retry_backoff = sim::Duration::zero();
  std::uint64_t staleness_violations = 0;  // replies staler than requested
  std::uint64_t replicas_selected_total = 0;
  /// Selections run, counting the initial transmission AND each retry
  /// (each runs Algorithm 1 afresh against the current pool).
  std::uint64_t selection_attempts = 0;
  sim::Duration total_response_time = sim::Duration::zero();
  sim::Duration total_update_response_time = sim::Duration::zero();

  double timing_failure_probability() const {
    return reads_completed == 0
               ? 0.0
               : static_cast<double>(timing_failures) /
                     static_cast<double>(reads_completed);
  }
  /// Mean |K| per selection attempt (initial transmissions and retries).
  double avg_replicas_selected() const {
    return selection_attempts == 0
               ? 0.0
               : static_cast<double>(replicas_selected_total) /
                     static_cast<double>(selection_attempts);
  }
  sim::Duration avg_response_time() const {
    return reads_completed == 0 ? sim::Duration::zero()
                                : total_response_time / static_cast<int64_t>(
                                                            reads_completed);
  }
  sim::Duration avg_update_response_time() const {
    return updates_completed == 0
               ? sim::Duration::zero()
               : total_update_response_time /
                     static_cast<int64_t>(updates_completed);
  }
};

class ClientHandler {
 public:
  using ReadCallback = std::function<void(const ReadOutcome&)>;
  using UpdateCallback = std::function<void(const UpdateOutcome&)>;
  /// Fired when the observed frequency of timely responses drops below the
  /// client's requested probability (paper Section 5.4).
  using QoSAlarm = std::function<void(double observed_failure_rate)>;

  ClientHandler(runtime::Executor& exec, gcs::Endpoint& endpoint,
                replication::ServiceGroups groups, ClientConfig config);
  ~ClientHandler();

  ClientHandler(const ClientHandler&) = delete;
  ClientHandler& operator=(const ClientHandler&) = delete;

  /// Joins the service's QoS group. Requests issued before the role map
  /// arrives are queued and sent as soon as it does.
  void start();

  /// Issues a read-only operation with the given QoS specification.
  void read(net::MessagePtr op, const core::QoSSpec& qos, ReadCallback done);

  /// Issues an update operation (sequentially ordered by the service).
  void update(net::MessagePtr op, UpdateCallback done);

  void set_qos_alarm(QoSAlarm alarm) { alarm_ = std::move(alarm); }

  bool ready() const { return repository_.has_roles(); }
  net::NodeId id() const { return endpoint_.id(); }
  const ClientStats& stats() const { return stats_; }
  const InfoRepository& repository() const { return repository_; }
  core::ReplicaSelector& selector() { return *config_.selector; }

 private:
  struct OutstandingRequest {
    bool is_read = false;
    net::MessagePtr op;
    core::QoSSpec qos;
    ReadCallback read_done;
    UpdateCallback update_done;
    sim::TimePoint t0;  // interception time
    sim::TimePoint tm;  // transmission time of the latest attempt
    std::uint32_t attempts = 0;
    bool completed = false;
    bool timing_failure = false;  // deadline timer fired with no reply
    std::size_t replicas_selected = 0;
    bool selection_satisfied = false;
    double predicted_probability = 0.0;
    sim::EventHandle deadline_timer;
    sim::EventHandle retry_timer;
  };

  void on_deliver(net::NodeId from, const net::MessagePtr& msg);
  void handle_reply(const std::shared_ptr<const replication::Reply>& reply);
  void transmit_read(const replication::RequestId& id, OutstandingRequest& req);
  void transmit_update(const replication::RequestId& id, OutstandingRequest& req);
  void arm_retry(const replication::RequestId& id);
  void on_retry(const replication::RequestId& id);
  void on_deadline(const replication::RequestId& id);
  void complete_read(const replication::RequestId& id, OutstandingRequest& req,
                     const replication::Reply* reply);
  void check_alarm(const core::QoSSpec& qos);
  void drain_pending();
  void forget_later(const replication::RequestId& id);

  // ---- observability ----
  void span(obs::SpanKind kind, const replication::RequestId& id,
            net::NodeId peer, std::uint64_t value = 0,
            sim::Duration duration = sim::Duration::zero());
  void emit_breakdown(const replication::RequestId& id,
                      const OutstandingRequest& req,
                      const replication::Reply& reply, sim::Duration total,
                      bool timing_failure);

  runtime::Executor& exec_;
  gcs::Endpoint& endpoint_;
  replication::ServiceGroups groups_;
  ClientConfig config_;
  sim::Rng rng_;
  gcs::Member* qos_member_ = nullptr;
  InfoRepository repository_;
  QoSAlarm alarm_;

  std::uint64_t next_seq_ = 0;
  std::unordered_map<replication::RequestId, OutstandingRequest> outstanding_;
  struct PendingApp {
    bool is_read;
    net::MessagePtr op;
    core::QoSSpec qos;
    ReadCallback read_done;
    UpdateCallback update_done;
    sim::TimePoint t0;
  };
  std::deque<PendingApp> pending_;  // issued before the role map arrived

  std::uint64_t timely_reads_ = 0;
  /// Per-client view (the `stats()` accessor); increments are mirrored
  /// into the registry-wide "client.*" aggregates.
  ClientStats stats_;
  obs::Observability& obs_;
  struct Instruments {
    explicit Instruments(obs::MetricsRegistry& reg);
    obs::Counter& reads_issued;
    obs::Counter& reads_completed;
    obs::Counter& reads_abandoned;
    obs::Counter& updates_issued;
    obs::Counter& updates_completed;
    obs::Counter& timing_failures;
    obs::Counter& deferred_replies;
    obs::Counter& retries;
    obs::Counter& transmit_attempts;
    obs::Counter& retry_backoff_ms;
    obs::Counter& staleness_violations;
    obs::Counter& replicas_selected_total;
    obs::Counter& selection_attempts;
    obs::Histogram& read_response_ms;
    obs::Histogram& update_response_ms;
    obs::Histogram& gateway_ms;
  };
  Instruments metrics_;
};

}  // namespace aqueduct::client
