#include "client/repository.hpp"

#include <unordered_set>

#include "sim/check.hpp"

namespace aqueduct::client {

InfoRepository::InfoRepository(std::size_t window_size, sim::Duration resolution,
                               double truncation_epsilon)
    : window_size_(window_size),
      model_(resolution, truncation_epsilon),
      arrival_rate_(window_size) {
  AQUEDUCT_CHECK(window_size_ > 0);
}

InfoRepository::Slot* InfoRepository::find_slot(net::NodeId id) {
  auto it = slot_of_.find(id);
  return it == slot_of_.end() ? nullptr : &slots_[it->second];
}

const InfoRepository::Slot* InfoRepository::find_slot(net::NodeId id) const {
  auto it = slot_of_.find(id);
  return it == slot_of_.end() ? nullptr : &slots_[it->second];
}

core::PerfHistory& InfoRepository::history(net::NodeId replica) {
  if (Slot* s = find_slot(replica)) {
    s->has_history = true;
    return s->history;
  }
  auto it = orphans_.find(replica);
  if (it == orphans_.end()) {
    it = orphans_.emplace(replica, core::PerfHistory(window_size_)).first;
  }
  return it->second;
}

const core::PerfHistory* InfoRepository::find_history(net::NodeId replica) const {
  if (const Slot* s = find_slot(replica)) {
    return s->has_history ? &s->history : nullptr;
  }
  auto it = orphans_.find(replica);
  return it == orphans_.end() ? nullptr : &it->second;
}

void InfoRepository::record_publication(
    const replication::PerfPublication& perf, sim::TimePoint now) {
  if (perf.has_sample) {
    core::PerfHistory& h = history(perf.replica);
    const std::uint64_t pre_version = h.version();
    const auto evicted_ts = h.service.push(perf.ts);
    const auto evicted_tq = h.queueing.push(perf.tq);
    std::optional<sim::Duration> tb;
    std::optional<sim::Duration> evicted_tb;
    if (perf.deferred) {
      tb = perf.tb;
      evicted_tb = h.lazy_wait.push(perf.tb);
    }
    if (cache_enabled_) {
      // Fold the push into the memoized integer state in place — the next
      // query then rematerializes the pmfs without a convolution. An entry
      // that was already stale (or never built) just stays version-behind
      // and rebuilds on its next query. Orphans (non-candidates) carry no
      // memo: nothing queries them.
      Slot* slot = find_slot(perf.replica);
      if (slot != nullptr && slot->estimate.valid &&
          slot->estimate.history_version == pre_version &&
          slot->estimate.state.built()) {
        slot->estimate.state.apply_publication(perf.ts, evicted_ts, perf.tq,
                                               evicted_tq, tb, evicted_tb);
        slot->estimate.history_version = h.version();
        slot->estimate.dirty = true;
        ++cache_stats_.incremental_updates;
      }
    }
  }
  if (perf.lazy) {
    arrival_rate_.record(perf.lazy->n_u, perf.lazy->t_u);
    lazy_tracker_.record(perf.lazy->t_l, perf.lazy->period, now);
  }
}

void InfoRepository::record_reply(net::NodeId replica,
                                  sim::Duration gateway_delay,
                                  sim::TimePoint now) {
  core::PerfHistory& h = history(replica);
  const std::uint64_t pre_version = h.version();
  h.set_gateway_delay(gateway_delay);
  h.last_reply_at = now;
  if (cache_enabled_) {
    // The gateway delay only enters at materialization time (it shifts the
    // grid), so the integer state is already current — just mark the pmfs
    // stale and sync the version.
    Slot* slot = find_slot(replica);
    if (slot != nullptr && slot->estimate.valid &&
        slot->estimate.history_version == pre_version &&
        slot->estimate.state.built()) {
      slot->estimate.history_version = h.version();
      slot->estimate.dirty = true;
      ++cache_stats_.incremental_updates;
    }
  }
}

namespace {

/// Every replica the role map names (the sequencer serves no reads but can
/// still own a history from its pre-promotion life).
std::unordered_set<net::NodeId> role_members(const replication::GroupInfo& info) {
  std::unordered_set<net::NodeId> out;
  if (info.sequencer.valid()) out.insert(info.sequencer);
  if (info.lazy_publisher.valid()) out.insert(info.lazy_publisher);
  out.insert(info.primaries.begin(), info.primaries.end());
  out.insert(info.secondaries.begin(), info.secondaries.end());
  return out;
}

}  // namespace

void InfoRepository::record_group_info(const replication::GroupInfo& info) {
  if (roles_ && info.epoch <= roles_->epoch) return;  // stale broadcast
  std::unordered_set<net::NodeId> previous;
  if (roles_) previous = role_members(*roles_);
  const bool boot = previous.empty();
  roles_ = info;
  const std::unordered_set<net::NodeId> current = role_members(info);

  // Rebuild the slot vector in the new candidates() emission order
  // (primaries then secondaries), carrying each surviving id's history —
  // and its memo entry, so a role reshuffle costs no reconvolution — over
  // from its old slot or from the orphan map.
  std::vector<Slot> next;
  next.reserve(info.primaries.size() + info.secondaries.size());
  std::unordered_map<net::NodeId, std::size_t> next_of;
  auto add_slot = [&](net::NodeId id, bool is_primary) {
    Slot s(window_size_);
    s.id = id;
    s.is_primary = is_primary;
    if (Slot* old = find_slot(id)) {
      s.has_history = old->has_history;
      s.history = std::move(old->history);
      s.estimate = std::move(old->estimate);
      old->has_history = false;  // consumed; skip in the sweep below
    } else if (auto it = orphans_.find(id); it != orphans_.end()) {
      s.has_history = true;
      s.history = std::move(it->second);
      orphans_.erase(it);
    }
    next_of.emplace(id, next.size());
    next.push_back(std::move(s));
  };
  for (const net::NodeId id : info.primaries) add_slot(id, true);
  for (const net::NodeId id : info.secondaries) add_slot(id, false);

  // Old-slot histories that left the candidate set: a node still named by
  // the role map (promoted to sequencer) parks in the orphan map; a
  // departed incarnation is evicted for good. NodeIds are never reused, so
  // a replica missing from the new role map is dead — its samples must
  // never blend into a reborn successor's Eq. 5/6 predictions.
  for (Slot& old : slots_) {
    if (!old.has_history || next_of.contains(old.id)) continue;
    if (current.contains(old.id)) {
      orphans_.emplace(old.id, std::move(old.history));
    } else {
      ++churn_stats_.histories_evicted;
    }
  }
  if (!boot) {
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (current.contains(it->first)) {
        ++it;
        continue;
      }
      it = orphans_.erase(it);
      ++churn_stats_.histories_evicted;
    }
  }
  slots_ = std::move(next);
  slot_of_ = std::move(next_of);

  if (boot) return;  // boot: nothing to warm up

  // Warm up replicas that newly appear after boot (reincarnations or late
  // joiners): without samples the selector treats them as unknowns (zero
  // CDFs, max ert). Seed their service-side windows from the lazy
  // publisher's history — the best cluster-wide proxy this client holds —
  // so Algorithm 1 may pick them immediately. Link-local state (gateway
  // delay, last reply time) stays empty: it is genuinely unknown.
  const core::PerfHistory* publisher = find_history(info.lazy_publisher);
  if (publisher == nullptr || !publisher->has_samples()) return;
  for (Slot& s : slots_) {
    if (s.has_history || s.id == info.sequencer || previous.contains(s.id)) {
      continue;
    }
    s.history.service = publisher->service;
    s.history.queueing = publisher->queueing;
    s.history.lazy_wait = publisher->lazy_wait;
    s.has_history = true;
    ++churn_stats_.replicas_warmed;
  }
}

const replication::GroupInfo& InfoRepository::roles() const {
  AQUEDUCT_CHECK_MSG(roles_.has_value(), "no GroupInfo received yet");
  return *roles_;
}

std::vector<core::CandidateReplica> InfoRepository::candidates(
    const core::QoSSpec& qos, sim::TimePoint now) const {
  std::vector<core::CandidateReplica> out;
  if (!roles_) return out;
  out.reserve(slots_.size());

  // Deferred reads wait on average about half a lazy interval when no t_b
  // samples exist yet; use that as the bootstrap U estimate.
  std::optional<sim::Duration> fallback_u;
  if (lazy_tracker_.period() > sim::Duration::zero()) {
    fallback_u = lazy_tracker_.period() / 2;
  }

  // One linear walk, no hashing: the slots already sit in emission order.
  for (const Slot& s : slots_) {
    core::CandidateReplica c;
    c.id = s.id;
    c.is_primary = s.is_primary;
    if (s.has_history) {
      estimate_cdfs(s, qos.deadline, fallback_u, c);
      c.ert = now - s.history.last_reply_at;
    } else {
      // Never heard from: maximal ert so the LRU sort tries it first, zero
      // CDFs so the model never credits it with meeting the deadline.
      c.ert = now - sim::kEpoch;
    }
    out.push_back(c);
  }
  return out;
}

void InfoRepository::estimate_cdfs(
    const Slot& slot, sim::Duration deadline,
    std::optional<sim::Duration> fallback_lazy_wait,
    core::CandidateReplica& out) const {
  const core::PerfHistory& h = slot.history;
  const bool want_deferred = !out.is_primary;
  if (!cache_enabled_) {
    out.immediate_cdf = model_.immediate_cdf(h, deadline);
    if (want_deferred) {
      out.deferred_cdf = model_.deferred_cdf(h, deadline, fallback_lazy_wait);
    }
    return;
  }

  CachedEstimate& e = slot.estimate;
  const std::uint64_t version = h.version();

  bool rebuilt = false;
  if (!e.valid || e.history_version != version) {
    // The entry is missing or fell behind without a delta being applied
    // (first sight of this replica, or the state predates the memo entry):
    // rebuild the integer counts from the windows by convolution.
    e.state.rebuild(h, model_.resolution());
    e.history_version = version;
    e.valid = true;
    e.dirty = true;
    e.has_deferred = false;
    rebuilt = true;
    ++cache_stats_.rebuilds;
  }

  if (e.dirty || e.fallback_lazy_wait != fallback_lazy_wait ||
      (want_deferred && !e.has_deferred)) {
    // The integer state is current but the materialized pmfs lag it (an
    // incremental update, a gateway shift, a fallback change, or a replica
    // that turned secondary): rematerialize — scaling and prefix sums
    // only, no convolution beyond the state's own lazily built deferred
    // product.
    const double epsilon = model_.truncation_epsilon();
    e.immediate = e.state.immediate(h.gateway_delay(), epsilon);
    e.has_deferred = e.has_deferred || want_deferred;
    e.deferred = e.has_deferred
                     ? e.state.deferred(h.gateway_delay(), fallback_lazy_wait,
                                        epsilon)
                     : core::Pmf{};
    e.fallback_lazy_wait = fallback_lazy_wait;
    e.dirty = false;
    e.deadline = deadline;
    e.immediate_cdf = e.immediate.cdf(deadline);
    e.deferred_cdf = e.deferred.cdf(deadline);
    if (!rebuilt) ++cache_stats_.incremental_refreshes;
  } else if (e.deadline != deadline) {
    // Same distributions, new deadline: re-evaluate the CDFs from the
    // cached pmfs (an O(1) prefix-sum probe, no convolution).
    e.deadline = deadline;
    e.immediate_cdf = e.immediate.cdf(deadline);
    e.deferred_cdf = e.deferred.cdf(deadline);
    ++cache_stats_.cdf_refreshes;
  } else {
    ++cache_stats_.hits;
  }
  out.immediate_cdf = e.immediate_cdf;
  if (want_deferred) out.deferred_cdf = e.deferred_cdf;
}

core::SelectionContext InfoRepository::selection_context(
    const core::QoSSpec& qos, sim::TimePoint now, sim::Rng& rng) const {
  core::SelectionContext ctx;
  ctx.candidates = candidates(qos, now);
  ctx.stale_factor = stale_factor(qos.staleness_threshold, now);
  ctx.qos = qos;
  ctx.now = now;
  ctx.rng = &rng;
  return ctx;
}

void InfoRepository::set_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) {
    for (Slot& s : slots_) s.estimate = CachedEstimate{};
  }
}

double InfoRepository::stale_factor(core::Staleness a, sim::TimePoint now) const {
  if (!arrival_rate_.has_data() || !lazy_tracker_.has_data()) return 1.0;
  const core::PoissonStalenessModel model(arrival_rate_.rate_per_second());
  return model.staleness_factor(a, lazy_tracker_.elapsed_since_lazy_update(now));
}

}  // namespace aqueduct::client
