// Client-side gateway for the FIFO timed consistency handler.
//
// Mirrors ClientHandler but speaks the FIFO protocol: updates go to all
// primaries with per-client ordering only (the GCS p2p channels already
// deliver them FIFO), and reads carry the client's own update horizon so
// replicas can honour read-your-writes. Replica selection reuses the same
// probabilistic machinery; because FIFO consistency has no global
// staleness measure, the secondary-group staleness factor is fixed at 1
// and deferral risk is carried by the deferred-read distributions alone.
//
// Scope note: this handler demonstrates the framework's pluggable-
// ordering design (paper Figure 2). It relies on the GCS channels for
// reliability but — unlike ClientHandler — has no re-selection/retry
// path, so a read whose entire selected set crashes is not re-issued.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "client/repository.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"
#include "gcs/endpoint.hpp"
#include "replication/fifo.hpp"
#include "replication/service.hpp"
#include "sim/random.hpp"
#include "runtime/executor.hpp"

namespace aqueduct::client {

struct FifoReadOutcome {
  net::MessagePtr result;
  sim::Duration response_time = sim::Duration::zero();
  bool timing_failure = false;
  bool deferred = false;
  net::NodeId responder;
  std::size_t replicas_selected = 0;
};

struct FifoClientStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t updates_completed = 0;
  std::uint64_t timing_failures = 0;
  std::uint64_t replicas_selected_total = 0;

  double avg_replicas_selected() const {
    return reads_completed == 0
               ? 0.0
               : static_cast<double>(replicas_selected_total) /
                     static_cast<double>(reads_completed);
  }
};

class FifoClientHandler {
 public:
  using ReadCallback = std::function<void(const FifoReadOutcome&)>;
  using UpdateCallback = std::function<void(sim::Duration response_time)>;

  FifoClientHandler(runtime::Executor& exec, gcs::Endpoint& endpoint,
                    replication::ServiceGroups groups,
                    std::size_t window_size = 20);

  FifoClientHandler(const FifoClientHandler&) = delete;
  FifoClientHandler& operator=(const FifoClientHandler&) = delete;

  void start();

  /// FIFO-ordered update; completes on the first primary reply.
  void update(net::MessagePtr op, UpdateCallback done);

  /// Read with read-your-writes session freshness: if `read_your_writes`
  /// is true, the serving replica must have applied this client's latest
  /// update (possibly deferring to a lazy propagation on a secondary).
  void read(net::MessagePtr op, const core::QoSSpec& qos,
            bool read_your_writes, ReadCallback done);

  bool ready() const { return has_roles_; }
  net::NodeId id() const { return endpoint_.id(); }
  const FifoClientStats& stats() const { return stats_; }

 private:
  struct Outstanding {
    bool is_read = false;
    core::QoSSpec qos;
    ReadCallback read_done;
    UpdateCallback update_done;
    sim::TimePoint t0;
    sim::TimePoint tm;
    bool completed = false;
    bool timing_failure = false;
    std::size_t replicas_selected = 0;
    sim::EventHandle deadline_timer;
  };

  void on_deliver(net::NodeId from, const net::MessagePtr& msg);
  void drain_pending();

  runtime::Executor& exec_;
  gcs::Endpoint& endpoint_;
  replication::ServiceGroups groups_;
  sim::Rng rng_;
  gcs::Member* qos_member_ = nullptr;
  InfoRepository repository_;
  core::ProbabilisticSelector selector_;

  bool has_roles_ = false;
  replication::FifoGroupInfo roles_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t my_update_horizon_ = 0;  // seq of my latest update
  std::unordered_map<replication::RequestId, Outstanding> outstanding_;
  std::deque<std::function<void()>> pending_;  // issued before roles known
  FifoClientStats stats_;
};

}  // namespace aqueduct::client
