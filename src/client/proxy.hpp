// Transparent service proxy implementing the paper's request model
// (Section 2): "a client application has to explicitly specify all the
// read-only methods it invokes on an object by their names. If an
// operation is not specified as read-only, then our middleware considers
// it to be an update operation."
//
// The application invokes methods by name; the proxy consults the
// ReadOnlyRegistry and routes through the QoS read path (with this
// proxy's default or a per-call QoS spec) or the sequentially ordered
// update path — exactly the interception an AQuA gateway performs for a
// CORBA object.
#pragma once

#include <string>
#include <utility>

#include "client/handler.hpp"
#include "core/qos.hpp"

namespace aqueduct::client {

/// Result of a proxied invocation, read or update. Constructible directly
/// from the handler outcomes so the proxy cannot silently drop fields when
/// ReadOutcome/UpdateOutcome grow.
struct InvokeOutcome {
  InvokeOutcome() = default;

  explicit InvokeOutcome(const ReadOutcome& read)
      : result(read.result),
        response_time(read.response_time),
        was_read(true),
        timing_failure(read.timing_failure),
        staleness(read.staleness),
        deferred(read.deferred),
        responder(read.responder),
        replicas_selected(read.replicas_selected) {}

  explicit InvokeOutcome(const UpdateOutcome& update)
      : result(update.result), response_time(update.response_time) {}

  net::MessagePtr result;
  sim::Duration response_time = sim::Duration::zero();
  bool was_read = false;
  /// Read-path details (defaulted for updates).
  bool timing_failure = false;
  core::Staleness staleness = 0;
  /// The reply came from a deferred (lazy-wait) read.
  bool deferred = false;
  /// Replica whose reply was delivered (invalid for updates/abandonment).
  net::NodeId responder;
  /// |K| the selector chose for the read.
  std::size_t replicas_selected = 0;
};

class ServiceProxy {
 public:
  using InvokeCallback = std::function<void(const InvokeOutcome&)>;

  /// `default_qos` applies to read-only invocations without an explicit
  /// spec. The registry is copied: the method set is fixed per proxy, as
  /// the paper's per-application declaration implies.
  ServiceProxy(ClientHandler& handler, core::ReadOnlyRegistry registry,
               core::QoSSpec default_qos)
      : handler_(handler),
        registry_(std::move(registry)),
        default_qos_(default_qos) {
    default_qos_.validate();
  }

  /// Invokes `method` with operation payload `op`, using the default QoS
  /// for reads.
  void invoke(const std::string& method, net::MessagePtr op,
              InvokeCallback done) {
    invoke(method, std::move(op), default_qos_, std::move(done));
  }

  /// Invokes `method` with an explicit QoS spec (used only if the method
  /// is read-only).
  void invoke(const std::string& method, net::MessagePtr op,
              const core::QoSSpec& qos, InvokeCallback done) {
    if (registry_.is_read_only(method)) {
      handler_.read(std::move(op), qos,
                    [done = std::move(done)](const ReadOutcome& read) {
                      if (done) done(InvokeOutcome(read));
                    });
    } else {
      handler_.update(std::move(op),
                      [done = std::move(done)](const UpdateOutcome& update) {
                        if (done) done(InvokeOutcome(update));
                      });
    }
  }

  bool is_read_only(const std::string& method) const {
    return registry_.is_read_only(method);
  }
  const core::QoSSpec& default_qos() const { return default_qos_; }

 private:
  ClientHandler& handler_;
  core::ReadOnlyRegistry registry_;
  core::QoSSpec default_qos_;
};

}  // namespace aqueduct::client
