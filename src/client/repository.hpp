// Client-side gateway information repository (paper Section 5.4).
//
// Stores, per replica, the sliding windows of published performance
// measurements (t_s, t_q, t_b), the latest two-way gateway delay t_g and
// last-reply timestamp for this client-replica pair, plus the staleness
// estimation state fed by the lazy publisher's broadcasts. From these it
// builds the candidate vector Algorithm 1 consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/qos.hpp"
#include "core/response_model.hpp"
#include "core/selection.hpp"
#include "core/staleness.hpp"
#include "replication/messages.hpp"
#include "sim/time.hpp"

namespace aqueduct::client {

class InfoRepository {
 public:
  /// `window_size` is the sliding-window length l (the paper evaluates 10
  /// and 20); `resolution` buckets the response-time pmfs.
  InfoRepository(std::size_t window_size, sim::Duration resolution);

  // ---- ingestion ----

  /// Performance broadcast from a replica (and, for the lazy publisher,
  /// the <n_u, t_u> / <n_L, t_L> staleness measurements).
  void record_publication(const replication::PerfPublication& perf,
                          sim::TimePoint now);

  /// A reply was received from `replica`: records the measured gateway
  /// delay and refreshes the elapsed-response-time clock.
  void record_reply(net::NodeId replica, sim::Duration gateway_delay,
                    sim::TimePoint now);

  /// Latest role map from the sequencer.
  void record_group_info(const replication::GroupInfo& info);

  // ---- queries ----

  bool has_roles() const { return roles_.has_value(); }
  const replication::GroupInfo& roles() const;

  /// Builds the Algorithm 1 input vector V for a read with spec `qos`:
  /// every primary (except the sequencer) and every secondary, with
  /// F^I(d), F^D(d) and ert filled in.
  std::vector<core::CandidateReplica> candidates(const core::QoSSpec& qos,
                                                 sim::TimePoint now) const;

  /// P(A_s(t) <= a) for the secondary group, via the Poisson model (Eq. 4).
  /// 1.0 until the first staleness broadcast arrives (no updates observed
  /// means no staleness).
  double stale_factor(core::Staleness a, sim::TimePoint now) const;

  /// Estimated update arrival rate λ_u (per second).
  double arrival_rate() const { return arrival_rate_.rate_per_second(); }

  /// Estimated time since the last lazy update.
  sim::Duration elapsed_since_lazy(sim::TimePoint now) const {
    return lazy_tracker_.elapsed_since_lazy_update(now);
  }

  /// Lazy-update period T_L learned from the publisher (zero if unknown).
  sim::Duration lazy_period() const { return lazy_tracker_.period(); }

  /// Per-replica history (creating it on first access).
  core::PerfHistory& history(net::NodeId replica);
  const core::PerfHistory* find_history(net::NodeId replica) const;

  const core::ResponseTimeModel& model() const { return model_; }
  std::size_t window_size() const { return window_size_; }

 private:
  std::size_t window_size_;
  core::ResponseTimeModel model_;
  std::unordered_map<net::NodeId, core::PerfHistory> histories_;
  core::ArrivalRateEstimator arrival_rate_;
  core::LazyIntervalTracker lazy_tracker_;
  std::optional<replication::GroupInfo> roles_;
};

}  // namespace aqueduct::client
