// Client-side gateway information repository (paper Section 5.4).
//
// Stores, per replica, the sliding windows of published performance
// measurements (t_s, t_q, t_b), the latest two-way gateway delay t_g and
// last-reply timestamp for this client-replica pair, plus the staleness
// estimation state fed by the lazy publisher's broadcasts. From these it
// builds the candidate vector Algorithm 1 consumes.
//
// The Eq. 5/6 distributions only change when a publication or reply
// mutates a history (PerfHistory::version()), so the repository memoizes
// each replica's immediate/deferred pmfs — and their CDF at the last-seen
// deadline — keyed on (history version, deferred fallback, deadline).
// A read against an unchanged replica costs nothing but a version compare
// (see DESIGN.md "Information repository caching").
//
// Each memo entry additionally owns the replica's integer-count convolution
// state (core::ResponseState), kept current *incrementally*: a window push
// subtracts the evicted sample's cross terms and adds the new sample's in
// O(window + span) integer additions, so even a mutated replica pays no
// convolution on the next read — only a cheap rematerialization of its
// pmfs (see DESIGN.md "Selection at scale").
//
// Storage is *slot-indexed*: the role map's candidates (primaries then
// secondaries, the exact order candidates() emits) live in a flat vector,
// one slot per ring/group position, with history and memo entry embedded.
// Assembling the Algorithm 1 input is then a single linear walk with no
// per-candidate hashing — the constant that dominated the selection hot
// path at large N (ROADMAP item 1). NodeId-keyed lookups survive only on
// the ingestion paths (a hash map from id to slot index, touched once per
// publication/reply, plus a side map for histories of nodes outside the
// role map: the sequencer's pre-promotion life and pre-roles broadcasts).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/pmf.hpp"
#include "core/qos.hpp"
#include "core/response_model.hpp"
#include "core/selection.hpp"
#include "core/staleness.hpp"
#include "replication/messages.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::client {

/// Effectiveness counters of the response-time memo (see DESIGN.md).
struct RepositoryCacheStats {
  /// Deadline, fallback, and history version all matched: the candidate's
  /// CDFs were served without touching a pmf.
  std::uint64_t hits = 0;
  /// History version changed with no delta applied (entry missing or
  /// stale): the integer state was rebuilt by convolution.
  std::uint64_t rebuilds = 0;
  /// Pmfs were current but the deadline differed: CDFs re-evaluated from
  /// the cached pmfs (an O(1) prefix-sum probe, no convolution).
  std::uint64_t cdf_refreshes = 0;
  /// A window push or gateway update was folded into the entry's integer
  /// state in place (O(window + span) additions, no convolution).
  std::uint64_t incremental_updates = 0;
  /// Pmfs/CDFs rematerialized from an incrementally maintained state —
  /// the post-mutation read that a rebuild used to pay convolutions for.
  std::uint64_t incremental_refreshes = 0;

  std::uint64_t lookups() const {
    return hits + rebuilds + cdf_refreshes + incremental_refreshes;
  }
};

/// Membership-churn bookkeeping: what record_group_info() evicted and
/// warmed as role maps changed (replica crashes and reincarnations).
struct RepositoryChurnStats {
  /// Histories dropped because their replica left the role map (its
  /// incarnation is dead; NodeIds are never reused).
  std::uint64_t histories_evicted = 0;
  /// Reborn/new replicas whose history was seeded from the lazy
  /// publisher's samples so the selector may consider them immediately.
  std::uint64_t replicas_warmed = 0;
};

class InfoRepository {
 public:
  /// `window_size` is the sliding-window length l (the paper evaluates 10
  /// and 20); `resolution` buckets the response-time pmfs;
  /// `truncation_epsilon` bounds the materialized pmfs' support (see
  /// ResponseTimeModel — 0 keeps the exact full support).
  InfoRepository(std::size_t window_size, sim::Duration resolution,
                 double truncation_epsilon = 0.0);

  // ---- ingestion ----

  /// Performance broadcast from a replica (and, for the lazy publisher,
  /// the <n_u, t_u> / <n_L, t_L> staleness measurements).
  void record_publication(const replication::PerfPublication& perf,
                          sim::TimePoint now);

  /// A reply was received from `replica`: records the measured gateway
  /// delay and refreshes the elapsed-response-time clock.
  void record_reply(net::NodeId replica, sim::Duration gateway_delay,
                    sim::TimePoint now);

  /// Latest role map from the sequencer. Rebuilds the slot vector in the
  /// new candidate order, evicts histories of replicas that departed (so
  /// Eq. 5/6 never mix incarnations) and warms up replicas that newly
  /// appear after boot (reincarnations) from the lazy publisher's history.
  void record_group_info(const replication::GroupInfo& info);

  // ---- queries ----

  bool has_roles() const { return roles_.has_value(); }
  const replication::GroupInfo& roles() const;

  /// Builds the Algorithm 1 input vector V for a read with spec `qos`:
  /// every primary (except the sequencer) and every secondary, with
  /// F^I(d), F^D(d) and ert filled in — one linear walk over the slot
  /// vector, CDFs served from each slot's memo when its history is
  /// unchanged since the last query.
  std::vector<core::CandidateReplica> candidates(const core::QoSSpec& qos,
                                                 sim::TimePoint now) const;

  /// Bundles candidates (memoized), the staleness factor, and the caller's
  /// qos/now/rng into the input of ReplicaSelector::select().
  core::SelectionContext selection_context(const core::QoSSpec& qos,
                                           sim::TimePoint now,
                                           sim::Rng& rng) const;

  /// P(A_s(t) <= a) for the secondary group, via the Poisson model (Eq. 4).
  /// 1.0 until the first staleness broadcast arrives (no updates observed
  /// means no staleness).
  double stale_factor(core::Staleness a, sim::TimePoint now) const;

  /// Estimated update arrival rate λ_u (per second).
  double arrival_rate() const { return arrival_rate_.rate_per_second(); }

  /// Estimated time since the last lazy update.
  sim::Duration elapsed_since_lazy(sim::TimePoint now) const {
    return lazy_tracker_.elapsed_since_lazy_update(now);
  }

  /// Lazy-update period T_L learned from the publisher (zero if unknown).
  sim::Duration lazy_period() const { return lazy_tracker_.period(); }

  /// Per-replica history (creating it on first access).
  core::PerfHistory& history(net::NodeId replica);
  const core::PerfHistory* find_history(net::NodeId replica) const;

  const core::ResponseTimeModel& model() const { return model_; }
  std::size_t window_size() const { return window_size_; }

  /// Disabling the memo forces every candidates() call to rebuild the
  /// pmfs from scratch (the pre-cache behaviour) — for A/B benches and
  /// coherence tests. Results must be bit-identical either way.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const { return cache_enabled_; }
  const RepositoryCacheStats& cache_stats() const { return cache_stats_; }
  void reset_cache_stats() { cache_stats_ = {}; }
  const RepositoryChurnStats& churn_stats() const { return churn_stats_; }

 private:
  /// Memoized per-replica Eq. 5/6 artifacts. `history_version` and
  /// `fallback_lazy_wait` key the pmfs; `deadline` additionally keys the
  /// CDF values evaluated from them. `state` holds the integer convolution
  /// counts; record_publication()/record_reply() keep it current in place
  /// (setting `dirty` so the next query rematerializes the pmfs without
  /// convolving), and `history_version` tracks how far it has been synced.
  struct CachedEstimate {
    bool valid = false;
    /// The pmfs/CDFs lag the (current) integer state and need
    /// rematerializing on the next query.
    bool dirty = false;
    /// The deferred pmf is filled lazily (primaries never ask for it).
    bool has_deferred = false;
    std::uint64_t history_version = 0;
    std::optional<sim::Duration> fallback_lazy_wait;
    core::ResponseState state;
    core::Pmf immediate;
    core::Pmf deferred;
    sim::Duration deadline = sim::Duration::zero();
    double immediate_cdf = 0.0;
    double deferred_cdf = 0.0;
  };

  /// One candidate position of the current role map, in the order
  /// candidates() emits (primaries then secondaries). History and memo
  /// entry are embedded so the hot path never hashes.
  struct Slot {
    explicit Slot(std::size_t window) : history(window) {}
    net::NodeId id;
    bool is_primary = false;
    /// Whether any publication/reply/warm-up touched the history yet — a
    /// silent slot must present as "never heard from" (zero CDFs, maximal
    /// ert), exactly like a missing hash-map entry used to.
    bool has_history = false;
    core::PerfHistory history;
    // The memo is observably pure: candidates() stays const.
    mutable CachedEstimate estimate;
  };

  Slot* find_slot(net::NodeId id);
  const Slot* find_slot(net::NodeId id) const;

  /// F^I(d) / F^D(d) for one slot, through its memo (or bypassing it when
  /// the cache is disabled).
  void estimate_cdfs(const Slot& slot, sim::Duration deadline,
                     std::optional<sim::Duration> fallback_lazy_wait,
                     core::CandidateReplica& out) const;

  std::size_t window_size_;
  core::ResponseTimeModel model_;
  /// Candidate slots in emission order; rebuilt on each role-map change.
  std::vector<Slot> slots_;
  /// NodeId -> slot index (ingestion paths only, never the read path).
  std::unordered_map<net::NodeId, std::size_t> slot_of_;
  /// Histories of nodes outside the candidate set: pre-roles publications
  /// and the sequencer's pre-promotion life.
  std::unordered_map<net::NodeId, core::PerfHistory> orphans_;
  core::ArrivalRateEstimator arrival_rate_;
  core::LazyIntervalTracker lazy_tracker_;
  std::optional<replication::GroupInfo> roles_;

  mutable RepositoryCacheStats cache_stats_;
  RepositoryChurnStats churn_stats_;
  bool cache_enabled_ = true;
};

}  // namespace aqueduct::client
