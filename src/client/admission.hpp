// Admission control (paper Section 7: "with some modifications, we can
// also use our framework to perform admission control, in order to
// determine the clients that can be admitted based on the current
// availability of the replicas").
//
// A client (or a front-end on its behalf) asks, before issuing a stream
// of reads with a given QoS spec, whether the *entire* current replica
// pool could satisfy it. If even K = all replicas cannot reach Pc(d),
// admitting the client only produces guaranteed QoS-alarm noise.
#pragma once

#include "client/repository.hpp"
#include "core/qos.hpp"
#include "core/selection.hpp"

namespace aqueduct::client {

struct AdmissionDecision {
  bool admitted = false;
  /// P_K(d) over the full replica pool (with the single-failure allowance
  /// of Algorithm 1 if `tolerate_one_failure`).
  double achievable_probability = 0.0;
  /// Replicas the pool currently has.
  std::size_t available_replicas = 0;
};

class AdmissionController {
 public:
  /// `headroom`: extra margin demanded above Pc(d) — e.g. 0.05 admits only
  /// clients whose spec is achievable with 5 points to spare.
  explicit AdmissionController(double headroom = 0.0,
                               bool tolerate_one_failure = true)
      : headroom_(headroom), tolerate_one_failure_(tolerate_one_failure) {}

  /// Evaluates `qos` against the repository's current view of the pool.
  AdmissionDecision evaluate(const InfoRepository& repository,
                             const core::QoSSpec& qos,
                             sim::TimePoint now) const {
    AdmissionDecision decision;
    core::SelectionContext ctx;
    ctx.candidates = repository.candidates(qos, now);
    ctx.stale_factor = repository.stale_factor(qos.staleness_threshold, now);
    ctx.qos = qos;
    ctx.now = now;
    decision.available_replicas = ctx.candidates.size();
    if (ctx.candidates.empty()) return decision;

    // P_K(d) with K = the whole pool, minus the best member if the
    // failure allowance is on (mirrors Algorithm 1's guarantee).
    auto& candidates = ctx.candidates;
    if (tolerate_one_failure_ && candidates.size() > 1) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].immediate_cdf > candidates[best].immediate_cdf) {
          best = i;
        }
      }
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best));
    }
    core::SelectAllSelector all;
    const auto result = all.select(ctx);
    decision.achievable_probability = result.predicted_probability;
    decision.admitted =
        decision.achievable_probability >= qos.min_probability + headroom_;
    return decision;
  }

 private:
  double headroom_;
  bool tolerate_one_failure_;
};

}  // namespace aqueduct::client
