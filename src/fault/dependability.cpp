#include "fault/dependability.hpp"

#include <utility>

#include "sim/check.hpp"

namespace aqueduct::fault {

DependabilityManager::DependabilityManager(runtime::Executor& exec,
                                           obs::Observability& obs,
                                           DependabilityConfig config,
                                           Hooks hooks)
    : exec_(exec),
      config_(config),
      hooks_(std::move(hooks)),
      restarts_budget_(config.max_restarts),
      c_polls_(obs.metrics.counter("dm.polls")),
      c_deficits_(obs.metrics.counter("dm.deficits_observed")),
      c_restarts_(obs.metrics.counter("dm.restarts_issued")) {
  AQUEDUCT_CHECK(static_cast<bool>(hooks_.num_replicas));
  AQUEDUCT_CHECK(static_cast<bool>(hooks_.alive));
  AQUEDUCT_CHECK(static_cast<bool>(hooks_.restart));
  poll_task_ = std::make_unique<runtime::PeriodicTask>(
      exec_, config_.poll_period, [this] { tick(); });
}

DependabilityManager::~DependabilityManager() { stop(); }

void DependabilityManager::start() { poll_task_->start(); }

void DependabilityManager::stop() {
  if (poll_task_) poll_task_->stop();
}

void DependabilityManager::tick() {
  ++stats_.polls;
  c_polls_.inc();

  const std::size_t slots = hooks_.num_replicas();
  const std::size_t target =
      config_.target_level == 0 ? slots
                                : std::min(config_.target_level, slots);
  std::size_t live = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    if (hooks_.alive(i)) ++live;
  }
  if (live + pending_.size() >= target) return;

  ++stats_.deficits_observed;
  c_deficits_.inc();

  // Schedule one bounded-latency restart per dead slot until the level
  // (counting restarts already in flight) reaches the target again.
  std::size_t needed = target - live - pending_.size();
  for (std::size_t i = 0; i < slots && needed > 0; ++i) {
    if (hooks_.alive(i) || pending_.contains(i)) continue;
    if (restarts_budget_ == 0) return;
    --restarts_budget_;
    --needed;
    pending_.insert(i);
    exec_.after(config_.restart_latency,
               [this, i, token = std::weak_ptr<const bool>(alive_token_)] {
                 if (token.expired()) return;
                 pending_.erase(i);
                 if (hooks_.alive(i)) return;  // raced with a manual restart
                 ++stats_.restarts_issued;
                 c_restarts_.inc();
                 hooks_.restart(i);
               });
  }
}

}  // namespace aqueduct::fault
