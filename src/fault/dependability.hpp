// Dependability manager: monitors the replication level and restarts
// crashed replicas with bounded latency (the AQuA dependability manager's
// availability-management role, scoped to this simulation's fail-stop
// model).
//
// The manager polls the harness every `poll_period`. When the number of
// live replicas drops below the target it schedules a restart for each
// crashed replica after `restart_latency` (modelling the time a real
// manager needs to notice the failure and spawn a replacement process).
// Restarts in flight are tracked so one outage never triggers a second
// replacement for the same slot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>

#include "obs/observability.hpp"
#include "runtime/executor.hpp"
#include "runtime/periodic_task.hpp"
#include "sim/time.hpp"

namespace aqueduct::fault {

struct DependabilityConfig {
  /// Desired number of live replicas; 0 means "all slots live".
  std::size_t target_level = 0;
  /// How often the manager inspects the replication level.
  sim::Duration poll_period = std::chrono::milliseconds(500);
  /// Bound on the time from a deficit being observed to the restart
  /// firing.
  sim::Duration restart_latency = std::chrono::seconds(1);
  /// Safety cap on restarts issued over the manager's lifetime.
  std::size_t max_restarts = SIZE_MAX;
};

struct DependabilityStats {
  std::uint64_t polls = 0;
  /// Polls that observed fewer live replicas than the target.
  std::uint64_t deficits_observed = 0;
  std::uint64_t restarts_issued = 0;
};

class DependabilityManager {
 public:
  /// Callbacks into the harness. `alive(i)` reports whether slot i hosts a
  /// live (started, non-crashed) replica; `restart(i)` reincarnates it.
  struct Hooks {
    std::function<std::size_t()> num_replicas;
    std::function<bool(std::size_t)> alive;
    std::function<void(std::size_t)> restart;
  };

  DependabilityManager(runtime::Executor& exec, obs::Observability& obs,
                       DependabilityConfig config, Hooks hooks);
  ~DependabilityManager();

  DependabilityManager(const DependabilityManager&) = delete;
  DependabilityManager& operator=(const DependabilityManager&) = delete;

  void start();
  void stop();

  const DependabilityStats& stats() const { return stats_; }

 private:
  void tick();

  runtime::Executor& exec_;
  DependabilityConfig config_;
  Hooks hooks_;
  std::unique_ptr<runtime::PeriodicTask> poll_task_;
  /// Slots with a restart scheduled but not yet fired.
  std::unordered_set<std::size_t> pending_;
  std::size_t restarts_budget_;
  DependabilityStats stats_;
  obs::Counter& c_polls_;
  obs::Counter& c_deficits_;
  obs::Counter& c_restarts_;
  /// Weakly captured by the scheduled restart lambdas so a destroyed
  /// manager's in-flight restarts become no-ops.
  std::shared_ptr<const bool> alive_token_ = std::make_shared<bool>(true);
};

}  // namespace aqueduct::fault
