// Deterministic fault schedules (the dependability manager's input).
//
// A FaultSchedule is a declarative, seed-reproducible list of fault
// injections — crashes, restarts, partitions, loss, latency spikes —
// expressed against *replica indices* and offsets from the simulation
// epoch. It replaces the ad-hoc `sim.at(..., [&]{ replica.crash(); })`
// lambdas scattered through tests and benches: the same schedule value can
// be printed, compared across runs, and replayed bit-identically.
//
// Schedules are pure data until apply() binds them to a concrete run via
// FaultTargets (callbacks into the harness plus the transport FaultInjection surface to mutate).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/transport.hpp"
#include "net/node.hpp"
#include "runtime/executor.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::fault {

enum class FaultKind {
  kCrash,         // fail-stop crash of `replica`
  kRestart,       // reincarnate + rejoin of `replica`
  kPartition,     // split side_a | side_b until the next kHeal
  kHeal,          // remove any active partition
  kLoss,          // set the network-wide loss probability
  kLinkLoss,      // directional loss on the (replica, peer) link
  kInboundLoss,   // loss on everything `replica` receives
  kOutboundLoss,  // loss on everything `replica` sends
  kLatencySpike,  // Normal(latency_mean, latency_std) on all of `replica`'s
                  // links for `duration`, then back to the default model

  // Gray-failure kinds. These require a transport whose FaultInjection
  // surface reports supports_gray_faults() — i.e. one wrapped via
  // net::make_chaos_transport(); apply() fails loudly otherwise.
  kDegradeLink,       // extra Normal(latency_mean, latency_std) delay and/or
                      // `probability` loss on the directional (replica, peer)
                      // link — a slow-but-alive / lossy link
  kPartialPartition,  // blackhole (replica, peer) both directions, leaving
                      // every other link intact
  kHealLink,          // restore (replica, peer): remove the partial
                      // partition and all per-link gray overrides
  kDuplicateStorm,    // duplicate each message with `probability`
  kReorder,           // hold back messages with `probability` by a uniform
                      // extra delay in [0, latency_mean)
  kThrottleLink,      // serialize (replica, peer) sends >= latency_mean apart
  kHealGray,          // reset every gray-failure knob and all loss settings
};

const char* to_string(FaultKind kind);

/// Stable replica identity: the `slot`-th server slot of shard `shard`.
/// Slots survive reincarnation (a restarted replica keeps its SlotRef while
/// its NodeId changes), so schedules written against SlotRefs replay
/// correctly across crash/restart cycles on any shard. A bare index
/// converts implicitly to (shard 0, slot) — the single-group scenario is
/// the 1-shard special case, and every pre-shard schedule keeps meaning
/// exactly what it meant.
struct SlotRef {
  std::size_t shard = 0;
  std::size_t slot = 0;
  constexpr SlotRef() = default;
  constexpr SlotRef(std::size_t flat_slot) : slot(flat_slot) {}  // NOLINT
  constexpr SlotRef(std::size_t shard, std::size_t slot)
      : shard(shard), slot(slot) {}
  friend constexpr auto operator<=>(SlotRef, SlotRef) = default;
};

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Injection time as an offset from sim::kEpoch.
  sim::Duration at = sim::Duration::zero();
  /// Target replica slot (crash/restart/loss shaping/latency spike).
  SlotRef replica;
  /// Link-loss destination replica slot.
  SlotRef peer;
  /// Partition sides (replica slots).
  std::vector<SlotRef> side_a;
  std::vector<SlotRef> side_b;
  /// Drop probability for the loss kinds, duplicate probability for
  /// kDuplicateStorm, holdback probability for kReorder (0 clears).
  double probability = 0.0;
  /// Latency-spike / degrade-link delay distribution; doubles as the
  /// reorder window (kReorder) and the throttle min-gap (kThrottleLink).
  sim::Duration latency_mean = sim::Duration::zero();
  sim::Duration latency_std = sim::Duration::zero();
  sim::Duration duration = sim::Duration::zero();
};

/// Parameters for FaultSchedule::random(): seed-derived crash/restart
/// sequences so chaos tests sweep many distinct-but-reproducible failure
/// patterns without hand-writing each one.
struct RandomFaultParams {
  /// Replica indices [0, crash_candidates) are eligible to crash. Callers
  /// typically exclude index 0 when they want the sequencer kept alive.
  std::size_t crash_candidates = 0;
  /// Smallest eligible index (set to 1 to spare the sequencer).
  std::size_t first_candidate = 0;
  std::size_t min_crashes = 1;
  std::size_t max_crashes = 2;
  /// No crash before this offset (lets the groups settle).
  sim::Duration earliest_crash = std::chrono::seconds(5);
  /// Each successive crash lands uniformly within this window after the
  /// previous one.
  sim::Duration crash_spacing = std::chrono::seconds(20);
  /// Whether crashed replicas are restarted after an outage.
  bool restart = true;
  sim::Duration min_outage = std::chrono::seconds(5);
  sim::Duration max_outage = std::chrono::seconds(15);
  /// Optional network-wide loss episode (0 disables).
  double loss_probability = 0.0;
  sim::Duration loss_from = sim::Duration::zero();
  sim::Duration loss_until = sim::Duration::zero();
};

/// Builder for an ordered fault-injection plan. All times are offsets from
/// sim::kEpoch; events() returns them sorted by time (stable for ties).
class FaultSchedule {
 public:
  FaultSchedule& crash(SlotRef replica, sim::Duration at);
  FaultSchedule& restart(SlotRef replica, sim::Duration at);
  /// crash + restart of the same replica (restart_at > crash_at).
  FaultSchedule& crash_restart(SlotRef replica, sim::Duration crash_at,
                               sim::Duration restart_at);
  FaultSchedule& partition(std::vector<SlotRef> side_a,
                           std::vector<SlotRef> side_b, sim::Duration at);
  FaultSchedule& heal(sim::Duration at);
  FaultSchedule& loss(double probability, sim::Duration at);
  FaultSchedule& link_loss(SlotRef from, SlotRef to,
                           double probability, sim::Duration at);
  FaultSchedule& inbound_loss(SlotRef replica, double probability,
                              sim::Duration at);
  FaultSchedule& outbound_loss(SlotRef replica, double probability,
                               sim::Duration at);
  FaultSchedule& latency_spike(SlotRef replica, sim::Duration mean,
                               sim::Duration std, sim::Duration at,
                               sim::Duration duration);

  // --- Gray-failure builders (need a chaos-wrapped transport) ---------
  // A zero `duration` means "until explicitly healed"; a positive one
  // appends the matching heal/clear event at `at + duration`, so the
  // schedule stays pure, printable data.

  /// Degrades the directional link `from` → `to`: extra
  /// Normal(extra_mean, extra_std) delay per message (if extra_mean > 0)
  /// and drop probability `loss` (if > 0). A positive duration emits a
  /// heal_link at the end, restoring the whole link.
  FaultSchedule& degrade_link(SlotRef from, SlotRef to,
                              sim::Duration extra_mean, sim::Duration extra_std,
                              double loss, sim::Duration at,
                              sim::Duration duration = sim::Duration::zero());
  /// Blackholes the (a, b) pair both directions, everyone else untouched.
  FaultSchedule& partial_partition(
      SlotRef a, SlotRef b, sim::Duration at,
      sim::Duration duration = sim::Duration::zero());
  /// Restores the (a, b) pair (partial partition + per-link overrides).
  FaultSchedule& heal_link(SlotRef a, SlotRef b, sim::Duration at);
  /// Duplicates every message with `probability` (0 ends the storm).
  FaultSchedule& duplicate_storm(double probability, sim::Duration at,
                                 sim::Duration duration = sim::Duration::zero());
  /// Holds back messages with `probability` by uniform extra delay in
  /// [0, window), letting later sends overtake them.
  FaultSchedule& reorder(double probability, sim::Duration window,
                         sim::Duration at,
                         sim::Duration duration = sim::Duration::zero());
  /// Serializes the directional link `from` → `to` to one message per
  /// `min_gap` — a slow-but-alive link (min_gap 0 clears).
  FaultSchedule& throttle_link(SlotRef from, SlotRef to,
                               sim::Duration min_gap, sim::Duration at,
                               sim::Duration duration = sim::Duration::zero());
  /// Resets every gray-failure knob and all loss settings.
  FaultSchedule& heal_gray(sim::Duration at);

  /// One entry of a WAN latency matrix: mean one-way extra delay and
  /// jitter (Normal std) for messages from one region to another.
  struct WanLink {
    sim::Duration mean = sim::Duration::zero();
    sim::Duration jitter = sim::Duration::zero();
  };

  /// Installs a WAN topology at `at`: `region_of[i]` places replica i in a
  /// region, `matrix[r][s]` describes the r → s link (zero mean = LAN-local,
  /// no override). Emits one degrade_link per ordered cross-region replica
  /// pair, so asymmetric matrices yield asymmetric links.
  FaultSchedule& wan_topology(const std::vector<std::size_t>& region_of,
                              const std::vector<std::vector<WanLink>>& matrix,
                              sim::Duration at);

  // --- Cross-shard builders -------------------------------------------

  /// Hot shard: every server slot of `shard` (slots [0, slots)) suffers a
  /// Normal(extra_mean, extra_std) latency spike on all its links for
  /// `duration` — the network-level signature of one overloaded replica
  /// group in a sharded pool.
  FaultSchedule& hot_shard(std::size_t shard, std::size_t slots,
                           sim::Duration extra_mean, sim::Duration extra_std,
                           sim::Duration at, sim::Duration duration);

  /// Correlated rack failure: slot `rack_slot` of *every* shard in
  /// [0, num_shards) crashes at `crash_at` — the groups share physical
  /// racks, so one rack loss takes the same slot from each of them — and
  /// (if restart_at > crash_at) restarts together at `restart_at`.
  FaultSchedule& correlated_rack_failure(
      std::size_t rack_slot, std::size_t num_shards, sim::Duration crash_at,
      sim::Duration restart_at = sim::Duration::zero());

  /// Derives a crash/restart plan from `seed` (same seed, same plan).
  static FaultSchedule random(std::uint64_t seed,
                              const RandomFaultParams& params);

  /// Events sorted by injection time.
  std::vector<FaultEvent> events() const;
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Binds a schedule to one concrete run. The callbacks translate replica
/// indices into actions on the harness's objects; `node_id` resolves the
/// *current incarnation*'s NodeId at injection time (the id of a reborn
/// replica differs from its pre-crash one). `network` is whatever
/// Transport::fault_injection() returned for the run's transport — any
/// backend, not just the loopback; nullptr means the transport cannot
/// inject faults at all, and gray-failure kinds additionally require
/// network->supports_gray_faults() (a chaos-wrapped transport). apply()
/// checks both up front and fails loudly.
struct FaultTargets {
  std::function<void(std::size_t)> crash;
  std::function<void(std::size_t)> restart;
  std::function<net::NodeId(std::size_t)> node_id;
  net::FaultInjection* network = nullptr;
  std::size_t num_replicas = 0;
  /// Maps a (shard, slot) reference onto the flat index the callbacks
  /// above consume. Null restricts the schedule to shard 0 (identity on
  /// the slot): single-group harnesses need not provide one, and a
  /// multi-shard event against such a target fails loudly in apply().
  std::function<std::size_t(SlotRef)> slot_index;
};

/// Schedules every event of `schedule` onto `exec`. Network-affecting kinds
/// require `targets.network`; crash/restart require the matching callback.
/// Index resolution happens at fire time, so a restart followed by a
/// latency spike hits the reborn incarnation.
void apply(const FaultSchedule& schedule, runtime::Executor& exec,
           FaultTargets targets);

}  // namespace aqueduct::fault
