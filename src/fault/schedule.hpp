// Deterministic fault schedules (the dependability manager's input).
//
// A FaultSchedule is a declarative, seed-reproducible list of fault
// injections — crashes, restarts, partitions, loss, latency spikes —
// expressed against *replica indices* and offsets from the simulation
// epoch. It replaces the ad-hoc `sim.at(..., [&]{ replica.crash(); })`
// lambdas scattered through tests and benches: the same schedule value can
// be printed, compared across runs, and replayed bit-identically.
//
// Schedules are pure data until apply() binds them to a concrete run via
// FaultTargets (callbacks into the harness plus the transport FaultInjection surface to mutate).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/transport.hpp"
#include "net/node.hpp"
#include "runtime/executor.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::fault {

enum class FaultKind {
  kCrash,         // fail-stop crash of `replica`
  kRestart,       // reincarnate + rejoin of `replica`
  kPartition,     // split side_a | side_b until the next kHeal
  kHeal,          // remove any active partition
  kLoss,          // set the network-wide loss probability
  kLinkLoss,      // directional loss on the (replica, peer) link
  kInboundLoss,   // loss on everything `replica` receives
  kOutboundLoss,  // loss on everything `replica` sends
  kLatencySpike,  // Normal(latency_mean, latency_std) on all of `replica`'s
                  // links for `duration`, then back to the default model

  // Gray-failure kinds. These require a transport whose FaultInjection
  // surface reports supports_gray_faults() — i.e. one wrapped via
  // net::make_chaos_transport(); apply() fails loudly otherwise.
  kDegradeLink,       // extra Normal(latency_mean, latency_std) delay and/or
                      // `probability` loss on the directional (replica, peer)
                      // link — a slow-but-alive / lossy link
  kPartialPartition,  // blackhole (replica, peer) both directions, leaving
                      // every other link intact
  kHealLink,          // restore (replica, peer): remove the partial
                      // partition and all per-link gray overrides
  kDuplicateStorm,    // duplicate each message with `probability`
  kReorder,           // hold back messages with `probability` by a uniform
                      // extra delay in [0, latency_mean)
  kThrottleLink,      // serialize (replica, peer) sends >= latency_mean apart
  kHealGray,          // reset every gray-failure knob and all loss settings
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  /// Injection time as an offset from sim::kEpoch.
  sim::Duration at = sim::Duration::zero();
  /// Target replica index (crash/restart/loss shaping/latency spike).
  std::size_t replica = 0;
  /// Link-loss destination replica index.
  std::size_t peer = 0;
  /// Partition sides (replica indices).
  std::vector<std::size_t> side_a;
  std::vector<std::size_t> side_b;
  /// Drop probability for the loss kinds, duplicate probability for
  /// kDuplicateStorm, holdback probability for kReorder (0 clears).
  double probability = 0.0;
  /// Latency-spike / degrade-link delay distribution; doubles as the
  /// reorder window (kReorder) and the throttle min-gap (kThrottleLink).
  sim::Duration latency_mean = sim::Duration::zero();
  sim::Duration latency_std = sim::Duration::zero();
  sim::Duration duration = sim::Duration::zero();
};

/// Parameters for FaultSchedule::random(): seed-derived crash/restart
/// sequences so chaos tests sweep many distinct-but-reproducible failure
/// patterns without hand-writing each one.
struct RandomFaultParams {
  /// Replica indices [0, crash_candidates) are eligible to crash. Callers
  /// typically exclude index 0 when they want the sequencer kept alive.
  std::size_t crash_candidates = 0;
  /// Smallest eligible index (set to 1 to spare the sequencer).
  std::size_t first_candidate = 0;
  std::size_t min_crashes = 1;
  std::size_t max_crashes = 2;
  /// No crash before this offset (lets the groups settle).
  sim::Duration earliest_crash = std::chrono::seconds(5);
  /// Each successive crash lands uniformly within this window after the
  /// previous one.
  sim::Duration crash_spacing = std::chrono::seconds(20);
  /// Whether crashed replicas are restarted after an outage.
  bool restart = true;
  sim::Duration min_outage = std::chrono::seconds(5);
  sim::Duration max_outage = std::chrono::seconds(15);
  /// Optional network-wide loss episode (0 disables).
  double loss_probability = 0.0;
  sim::Duration loss_from = sim::Duration::zero();
  sim::Duration loss_until = sim::Duration::zero();
};

/// Builder for an ordered fault-injection plan. All times are offsets from
/// sim::kEpoch; events() returns them sorted by time (stable for ties).
class FaultSchedule {
 public:
  FaultSchedule& crash(std::size_t replica, sim::Duration at);
  FaultSchedule& restart(std::size_t replica, sim::Duration at);
  /// crash + restart of the same replica (restart_at > crash_at).
  FaultSchedule& crash_restart(std::size_t replica, sim::Duration crash_at,
                               sim::Duration restart_at);
  FaultSchedule& partition(std::vector<std::size_t> side_a,
                           std::vector<std::size_t> side_b, sim::Duration at);
  FaultSchedule& heal(sim::Duration at);
  FaultSchedule& loss(double probability, sim::Duration at);
  FaultSchedule& link_loss(std::size_t from, std::size_t to,
                           double probability, sim::Duration at);
  FaultSchedule& inbound_loss(std::size_t replica, double probability,
                              sim::Duration at);
  FaultSchedule& outbound_loss(std::size_t replica, double probability,
                               sim::Duration at);
  FaultSchedule& latency_spike(std::size_t replica, sim::Duration mean,
                               sim::Duration std, sim::Duration at,
                               sim::Duration duration);

  // --- Gray-failure builders (need a chaos-wrapped transport) ---------
  // A zero `duration` means "until explicitly healed"; a positive one
  // appends the matching heal/clear event at `at + duration`, so the
  // schedule stays pure, printable data.

  /// Degrades the directional link `from` → `to`: extra
  /// Normal(extra_mean, extra_std) delay per message (if extra_mean > 0)
  /// and drop probability `loss` (if > 0). A positive duration emits a
  /// heal_link at the end, restoring the whole link.
  FaultSchedule& degrade_link(std::size_t from, std::size_t to,
                              sim::Duration extra_mean, sim::Duration extra_std,
                              double loss, sim::Duration at,
                              sim::Duration duration = sim::Duration::zero());
  /// Blackholes the (a, b) pair both directions, everyone else untouched.
  FaultSchedule& partial_partition(
      std::size_t a, std::size_t b, sim::Duration at,
      sim::Duration duration = sim::Duration::zero());
  /// Restores the (a, b) pair (partial partition + per-link overrides).
  FaultSchedule& heal_link(std::size_t a, std::size_t b, sim::Duration at);
  /// Duplicates every message with `probability` (0 ends the storm).
  FaultSchedule& duplicate_storm(double probability, sim::Duration at,
                                 sim::Duration duration = sim::Duration::zero());
  /// Holds back messages with `probability` by uniform extra delay in
  /// [0, window), letting later sends overtake them.
  FaultSchedule& reorder(double probability, sim::Duration window,
                         sim::Duration at,
                         sim::Duration duration = sim::Duration::zero());
  /// Serializes the directional link `from` → `to` to one message per
  /// `min_gap` — a slow-but-alive link (min_gap 0 clears).
  FaultSchedule& throttle_link(std::size_t from, std::size_t to,
                               sim::Duration min_gap, sim::Duration at,
                               sim::Duration duration = sim::Duration::zero());
  /// Resets every gray-failure knob and all loss settings.
  FaultSchedule& heal_gray(sim::Duration at);

  /// One entry of a WAN latency matrix: mean one-way extra delay and
  /// jitter (Normal std) for messages from one region to another.
  struct WanLink {
    sim::Duration mean = sim::Duration::zero();
    sim::Duration jitter = sim::Duration::zero();
  };

  /// Installs a WAN topology at `at`: `region_of[i]` places replica i in a
  /// region, `matrix[r][s]` describes the r → s link (zero mean = LAN-local,
  /// no override). Emits one degrade_link per ordered cross-region replica
  /// pair, so asymmetric matrices yield asymmetric links.
  FaultSchedule& wan_topology(const std::vector<std::size_t>& region_of,
                              const std::vector<std::vector<WanLink>>& matrix,
                              sim::Duration at);

  /// Derives a crash/restart plan from `seed` (same seed, same plan).
  static FaultSchedule random(std::uint64_t seed,
                              const RandomFaultParams& params);

  /// Events sorted by injection time.
  std::vector<FaultEvent> events() const;
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Binds a schedule to one concrete run. The callbacks translate replica
/// indices into actions on the harness's objects; `node_id` resolves the
/// *current incarnation*'s NodeId at injection time (the id of a reborn
/// replica differs from its pre-crash one). `network` is whatever
/// Transport::fault_injection() returned for the run's transport — any
/// backend, not just the loopback; nullptr means the transport cannot
/// inject faults at all, and gray-failure kinds additionally require
/// network->supports_gray_faults() (a chaos-wrapped transport). apply()
/// checks both up front and fails loudly.
struct FaultTargets {
  std::function<void(std::size_t)> crash;
  std::function<void(std::size_t)> restart;
  std::function<net::NodeId(std::size_t)> node_id;
  net::FaultInjection* network = nullptr;
  std::size_t num_replicas = 0;
};

/// Schedules every event of `schedule` onto `exec`. Network-affecting kinds
/// require `targets.network`; crash/restart require the matching callback.
/// Index resolution happens at fire time, so a restart followed by a
/// latency spike hits the reborn incarnation.
void apply(const FaultSchedule& schedule, runtime::Executor& exec,
           FaultTargets targets);

}  // namespace aqueduct::fault
