#include "fault/schedule.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kLinkLoss: return "link_loss";
    case FaultKind::kInboundLoss: return "inbound_loss";
    case FaultKind::kOutboundLoss: return "outbound_loss";
    case FaultKind::kLatencySpike: return "latency_spike";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::crash(std::size_t replica, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at = at;
  e.replica = replica;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::restart(std::size_t replica, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kRestart;
  e.at = at;
  e.replica = replica;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::crash_restart(std::size_t replica,
                                            sim::Duration crash_at,
                                            sim::Duration restart_at) {
  AQUEDUCT_CHECK_MSG(restart_at > crash_at,
                     "restart must come after the crash");
  crash(replica, crash_at);
  return restart(replica, restart_at);
}

FaultSchedule& FaultSchedule::partition(std::vector<std::size_t> side_a,
                                        std::vector<std::size_t> side_b,
                                        sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.at = at;
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::heal(sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kHeal;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::loss(double probability, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kLoss;
  e.at = at;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::link_loss(std::size_t from, std::size_t to,
                                        double probability, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kLinkLoss;
  e.at = at;
  e.replica = from;
  e.peer = to;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::inbound_loss(std::size_t replica,
                                           double probability,
                                           sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kInboundLoss;
  e.at = at;
  e.replica = replica;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::outbound_loss(std::size_t replica,
                                            double probability,
                                            sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kOutboundLoss;
  e.at = at;
  e.replica = replica;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::latency_spike(std::size_t replica,
                                            sim::Duration mean,
                                            sim::Duration std,
                                            sim::Duration at,
                                            sim::Duration duration) {
  AQUEDUCT_CHECK(duration > sim::Duration::zero());
  FaultEvent e;
  e.kind = FaultKind::kLatencySpike;
  e.at = at;
  e.replica = replica;
  e.latency_mean = mean;
  e.latency_std = std;
  e.duration = duration;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed,
                                    const RandomFaultParams& params) {
  AQUEDUCT_CHECK_MSG(params.crash_candidates > params.first_candidate,
                     "no eligible crash candidates");
  AQUEDUCT_CHECK(params.min_crashes <= params.max_crashes);
  sim::Rng rng(seed);
  FaultSchedule schedule;

  const std::size_t span = params.max_crashes - params.min_crashes + 1;
  const std::size_t crashes =
      params.min_crashes + static_cast<std::size_t>(rng.uniform_int(span));
  const std::size_t pool = params.crash_candidates - params.first_candidate;

  sim::Duration cursor = params.earliest_crash;
  std::vector<std::size_t> down;  // crashed and not yet restarted
  for (std::size_t i = 0; i < crashes; ++i) {
    // Pick a victim that is currently up (a replica can crash repeatedly,
    // but only after its restart has fired).
    std::size_t victim = 0;
    bool found = false;
    for (std::size_t tries = 0; tries < 16 && !found; ++tries) {
      victim = params.first_candidate +
               static_cast<std::size_t>(rng.uniform_int(pool));
      found = std::find(down.begin(), down.end(), victim) == down.end();
    }
    if (!found) break;  // everything eligible is already down

    const auto spacing_ms = static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            params.crash_spacing)
            .count());
    cursor += std::chrono::duration_cast<sim::Duration>(
        std::chrono::duration<double, std::milli>(
            rng.uniform(0.0, spacing_ms)));
    schedule.crash(victim, cursor);

    if (params.restart) {
      const auto min_ms = static_cast<double>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              params.min_outage)
              .count());
      const auto max_ms = static_cast<double>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              params.max_outage)
              .count());
      const sim::Duration outage = std::chrono::duration_cast<sim::Duration>(
          std::chrono::duration<double, std::milli>(
              rng.uniform(min_ms, std::max(min_ms, max_ms))));
      schedule.restart(victim, cursor + outage);
    } else {
      down.push_back(victim);
    }
  }

  if (params.loss_probability > 0.0 &&
      params.loss_until > params.loss_from) {
    schedule.loss(params.loss_probability, params.loss_from);
    schedule.loss(0.0, params.loss_until);
  }
  return schedule;
}

std::vector<FaultEvent> FaultSchedule::events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return sorted;
}

void apply(const FaultSchedule& schedule, runtime::Executor& exec,
           FaultTargets targets) {
  auto shared = std::make_shared<FaultTargets>(std::move(targets));
  for (const FaultEvent& event : schedule.events()) {
    const bool needs_network = event.kind != FaultKind::kCrash &&
                               event.kind != FaultKind::kRestart;
    if (needs_network) {
      AQUEDUCT_CHECK_MSG(shared->network != nullptr,
                         "network-affecting fault without a FaultInjection "
                         "target (real transports have none)");
      AQUEDUCT_CHECK_MSG(static_cast<bool>(shared->node_id) ||
                             event.kind == FaultKind::kLoss ||
                             event.kind == FaultKind::kHeal,
                         "fault schedule needs a node_id resolver");
    }
    exec.at(sim::kEpoch + event.at, [event, shared, &exec] {
      net::FaultInjection* net = shared->network;
      switch (event.kind) {
        case FaultKind::kCrash:
          AQUEDUCT_CHECK_MSG(static_cast<bool>(shared->crash),
                             "fault schedule needs a crash callback");
          shared->crash(event.replica);
          break;
        case FaultKind::kRestart:
          AQUEDUCT_CHECK_MSG(static_cast<bool>(shared->restart),
                             "fault schedule needs a restart callback");
          shared->restart(event.replica);
          break;
        case FaultKind::kPartition: {
          std::vector<net::NodeId> a, b;
          a.reserve(event.side_a.size());
          b.reserve(event.side_b.size());
          for (std::size_t idx : event.side_a)
            a.push_back(shared->node_id(idx));
          for (std::size_t idx : event.side_b)
            b.push_back(shared->node_id(idx));
          net->partition(std::move(a), std::move(b));
          break;
        }
        case FaultKind::kHeal:
          net->heal();
          break;
        case FaultKind::kLoss:
          net->set_loss_probability(event.probability);
          break;
        case FaultKind::kLinkLoss:
          if (event.probability > 0.0) {
            net->set_link_loss(shared->node_id(event.replica),
                               shared->node_id(event.peer),
                               event.probability);
          } else {
            net->clear_link_loss(shared->node_id(event.replica),
                                 shared->node_id(event.peer));
          }
          break;
        case FaultKind::kInboundLoss:
          net->set_inbound_loss(shared->node_id(event.replica),
                                event.probability);
          break;
        case FaultKind::kOutboundLoss:
          net->set_outbound_loss(shared->node_id(event.replica),
                                 event.probability);
          break;
        case FaultKind::kLatencySpike: {
          const net::NodeId node = shared->node_id(event.replica);
          net->set_node_latency(node, std::make_shared<sim::NormalDuration>(
                                          event.latency_mean,
                                          event.latency_std));
          exec.after(event.duration,
                    [node, net] { net->clear_node_latency(node); });
          break;
        }
      }
    });
  }
}

}  // namespace aqueduct::fault
