#include "fault/schedule.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kLinkLoss: return "link_loss";
    case FaultKind::kInboundLoss: return "inbound_loss";
    case FaultKind::kOutboundLoss: return "outbound_loss";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kDegradeLink: return "degrade_link";
    case FaultKind::kPartialPartition: return "partial_partition";
    case FaultKind::kHealLink: return "heal_link";
    case FaultKind::kDuplicateStorm: return "duplicate_storm";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kThrottleLink: return "throttle_link";
    case FaultKind::kHealGray: return "heal_gray";
  }
  return "unknown";
}

namespace {
bool is_gray(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDegradeLink:
    case FaultKind::kPartialPartition:
    case FaultKind::kHealLink:
    case FaultKind::kDuplicateStorm:
    case FaultKind::kReorder:
    case FaultKind::kThrottleLink:
    case FaultKind::kHealGray:
      return true;
    default:
      return false;
  }
}

/// Kinds that act on the whole network and need no replica-index → NodeId
/// resolution.
bool is_global(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHeal:
    case FaultKind::kLoss:
    case FaultKind::kDuplicateStorm:
    case FaultKind::kReorder:
    case FaultKind::kHealGray:
      return true;
    default:
      return false;
  }
}
}  // namespace

FaultSchedule& FaultSchedule::crash(SlotRef replica, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at = at;
  e.replica = replica;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::restart(SlotRef replica, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kRestart;
  e.at = at;
  e.replica = replica;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::crash_restart(SlotRef replica,
                                            sim::Duration crash_at,
                                            sim::Duration restart_at) {
  AQUEDUCT_CHECK_MSG(restart_at > crash_at,
                     "restart must come after the crash");
  crash(replica, crash_at);
  return restart(replica, restart_at);
}

FaultSchedule& FaultSchedule::partition(std::vector<SlotRef> side_a,
                                        std::vector<SlotRef> side_b,
                                        sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.at = at;
  e.side_a = std::move(side_a);
  e.side_b = std::move(side_b);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::heal(sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kHeal;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::loss(double probability, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kLoss;
  e.at = at;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::link_loss(SlotRef from, SlotRef to,
                                        double probability, sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kLinkLoss;
  e.at = at;
  e.replica = from;
  e.peer = to;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::inbound_loss(SlotRef replica,
                                           double probability,
                                           sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kInboundLoss;
  e.at = at;
  e.replica = replica;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::outbound_loss(SlotRef replica,
                                            double probability,
                                            sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kOutboundLoss;
  e.at = at;
  e.replica = replica;
  e.probability = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::latency_spike(SlotRef replica,
                                            sim::Duration mean,
                                            sim::Duration std,
                                            sim::Duration at,
                                            sim::Duration duration) {
  AQUEDUCT_CHECK(duration > sim::Duration::zero());
  FaultEvent e;
  e.kind = FaultKind::kLatencySpike;
  e.at = at;
  e.replica = replica;
  e.latency_mean = mean;
  e.latency_std = std;
  e.duration = duration;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::degrade_link(SlotRef from, SlotRef to,
                                           sim::Duration extra_mean,
                                           sim::Duration extra_std, double loss,
                                           sim::Duration at,
                                           sim::Duration duration) {
  AQUEDUCT_CHECK_MSG(extra_mean > sim::Duration::zero() || loss > 0.0,
                     "degrade_link with neither extra delay nor loss");
  FaultEvent e;
  e.kind = FaultKind::kDegradeLink;
  e.at = at;
  e.replica = from;
  e.peer = to;
  e.probability = loss;
  e.latency_mean = extra_mean;
  e.latency_std = extra_std;
  events_.push_back(std::move(e));
  if (duration > sim::Duration::zero()) heal_link(from, to, at + duration);
  return *this;
}

FaultSchedule& FaultSchedule::partial_partition(SlotRef a, SlotRef b,
                                                sim::Duration at,
                                                sim::Duration duration) {
  FaultEvent e;
  e.kind = FaultKind::kPartialPartition;
  e.at = at;
  e.replica = a;
  e.peer = b;
  events_.push_back(std::move(e));
  if (duration > sim::Duration::zero()) heal_link(a, b, at + duration);
  return *this;
}

FaultSchedule& FaultSchedule::heal_link(SlotRef a, SlotRef b,
                                        sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kHealLink;
  e.at = at;
  e.replica = a;
  e.peer = b;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::duplicate_storm(double probability,
                                              sim::Duration at,
                                              sim::Duration duration) {
  FaultEvent e;
  e.kind = FaultKind::kDuplicateStorm;
  e.at = at;
  e.probability = probability;
  events_.push_back(std::move(e));
  if (duration > sim::Duration::zero() && probability > 0.0) {
    duplicate_storm(0.0, at + duration);
  }
  return *this;
}

FaultSchedule& FaultSchedule::reorder(double probability, sim::Duration window,
                                      sim::Duration at, sim::Duration duration) {
  AQUEDUCT_CHECK_MSG(probability == 0.0 || window > sim::Duration::zero(),
                     "reorder needs a positive window");
  FaultEvent e;
  e.kind = FaultKind::kReorder;
  e.at = at;
  e.probability = probability;
  e.latency_mean = window;
  events_.push_back(std::move(e));
  if (duration > sim::Duration::zero() && probability > 0.0) {
    reorder(0.0, window, at + duration);
  }
  return *this;
}

FaultSchedule& FaultSchedule::throttle_link(SlotRef from, SlotRef to,
                                            sim::Duration min_gap,
                                            sim::Duration at,
                                            sim::Duration duration) {
  FaultEvent e;
  e.kind = FaultKind::kThrottleLink;
  e.at = at;
  e.replica = from;
  e.peer = to;
  e.latency_mean = min_gap;
  events_.push_back(std::move(e));
  if (duration > sim::Duration::zero() && min_gap > sim::Duration::zero()) {
    throttle_link(from, to, sim::Duration::zero(), at + duration);
  }
  return *this;
}

FaultSchedule& FaultSchedule::heal_gray(sim::Duration at) {
  FaultEvent e;
  e.kind = FaultKind::kHealGray;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::wan_topology(
    const std::vector<std::size_t>& region_of,
    const std::vector<std::vector<WanLink>>& matrix, sim::Duration at) {
  for (const auto& row : matrix) {
    AQUEDUCT_CHECK_MSG(row.size() == matrix.size(),
                       "WAN latency matrix must be square");
  }
  for (std::size_t region : region_of) {
    AQUEDUCT_CHECK_MSG(region < matrix.size(),
                       "replica assigned to a region outside the matrix");
  }
  for (std::size_t i = 0; i < region_of.size(); ++i) {
    for (std::size_t j = 0; j < region_of.size(); ++j) {
      if (i == j) continue;
      const WanLink& link = matrix[region_of[i]][region_of[j]];
      if (link.mean <= sim::Duration::zero()) continue;
      degrade_link(i, j, link.mean, link.jitter, /*loss=*/0.0, at);
    }
  }
  return *this;
}

FaultSchedule& FaultSchedule::hot_shard(std::size_t shard, std::size_t slots,
                                        sim::Duration extra_mean,
                                        sim::Duration extra_std,
                                        sim::Duration at,
                                        sim::Duration duration) {
  AQUEDUCT_CHECK_MSG(slots > 0, "hot_shard needs at least one slot");
  for (std::size_t slot = 0; slot < slots; ++slot) {
    latency_spike(SlotRef{shard, slot}, extra_mean, extra_std, at, duration);
  }
  return *this;
}

FaultSchedule& FaultSchedule::correlated_rack_failure(std::size_t rack_slot,
                                                      std::size_t num_shards,
                                                      sim::Duration crash_at,
                                                      sim::Duration restart_at) {
  AQUEDUCT_CHECK_MSG(num_shards > 0, "correlated rack failure needs shards");
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    if (restart_at > crash_at) {
      crash_restart(SlotRef{shard, rack_slot}, crash_at, restart_at);
    } else {
      crash(SlotRef{shard, rack_slot}, crash_at);
    }
  }
  return *this;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed,
                                    const RandomFaultParams& params) {
  AQUEDUCT_CHECK_MSG(params.crash_candidates > params.first_candidate,
                     "no eligible crash candidates");
  AQUEDUCT_CHECK(params.min_crashes <= params.max_crashes);
  sim::Rng rng(seed);
  FaultSchedule schedule;

  const std::size_t span = params.max_crashes - params.min_crashes + 1;
  const std::size_t crashes =
      params.min_crashes + static_cast<std::size_t>(rng.uniform_int(span));
  const std::size_t pool = params.crash_candidates - params.first_candidate;

  sim::Duration cursor = params.earliest_crash;
  std::vector<std::size_t> down;  // crashed and not yet restarted
  for (std::size_t i = 0; i < crashes; ++i) {
    // Pick a victim that is currently up (a replica can crash repeatedly,
    // but only after its restart has fired).
    std::size_t victim = 0;
    bool found = false;
    for (std::size_t tries = 0; tries < 16 && !found; ++tries) {
      victim = params.first_candidate +
               static_cast<std::size_t>(rng.uniform_int(pool));
      found = std::find(down.begin(), down.end(), victim) == down.end();
    }
    if (!found) break;  // everything eligible is already down

    const auto spacing_ms = static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            params.crash_spacing)
            .count());
    cursor += std::chrono::duration_cast<sim::Duration>(
        std::chrono::duration<double, std::milli>(
            rng.uniform(0.0, spacing_ms)));
    schedule.crash(victim, cursor);

    if (params.restart) {
      const auto min_ms = static_cast<double>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              params.min_outage)
              .count());
      const auto max_ms = static_cast<double>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              params.max_outage)
              .count());
      const sim::Duration outage = std::chrono::duration_cast<sim::Duration>(
          std::chrono::duration<double, std::milli>(
              rng.uniform(min_ms, std::max(min_ms, max_ms))));
      schedule.restart(victim, cursor + outage);
    } else {
      down.push_back(victim);
    }
  }

  if (params.loss_probability > 0.0 &&
      params.loss_until > params.loss_from) {
    schedule.loss(params.loss_probability, params.loss_from);
    schedule.loss(0.0, params.loss_until);
  }
  return schedule;
}

std::vector<FaultEvent> FaultSchedule::events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return sorted;
}

void apply(const FaultSchedule& schedule, runtime::Executor& exec,
           FaultTargets targets) {
  auto shared = std::make_shared<FaultTargets>(std::move(targets));
  for (const FaultEvent& event : schedule.events()) {
    const bool needs_network = event.kind != FaultKind::kCrash &&
                               event.kind != FaultKind::kRestart;
    if (needs_network) {
      AQUEDUCT_CHECK_MSG(
          shared->network != nullptr,
          "schedule injects '"
              << to_string(event.kind) << "' at " << sim::format(event.at)
              << " but Transport::fault_injection() returned nullptr — this "
                 "backend cannot inject faults (wrap it via "
                 "net::make_chaos_transport() to get an injectable surface)");
      AQUEDUCT_CHECK_MSG(
          !is_gray(event.kind) || shared->network->supports_gray_faults(),
          "schedule injects gray-failure action '"
              << to_string(event.kind) << "' at " << sim::format(event.at)
              << " but the transport's FaultInjection surface only supports "
                 "crash-era faults — wrap the transport via "
                 "net::make_chaos_transport()");
      AQUEDUCT_CHECK_MSG(static_cast<bool>(shared->node_id) ||
                             is_global(event.kind),
                         "fault schedule needs a node_id resolver");
    }
    exec.at(sim::kEpoch + event.at, [event, shared, &exec] {
      net::FaultInjection* net = shared->network;
      // (shard, slot) -> flat index. Without a resolver only shard 0 is
      // addressable and the slot doubles as the flat index (the pre-shard
      // contract).
      const auto flat = [&shared](SlotRef ref) {
        if (shared->slot_index) return shared->slot_index(ref);
        AQUEDUCT_CHECK_MSG(ref.shard == 0,
                           "fault event targets shard "
                               << ref.shard
                               << " but FaultTargets has no slot_index "
                                  "resolver (single-group harness)");
        return ref.slot;
      };
      const auto node_of = [&shared, &flat](SlotRef ref) {
        return shared->node_id(flat(ref));
      };
      switch (event.kind) {
        case FaultKind::kCrash:
          AQUEDUCT_CHECK_MSG(static_cast<bool>(shared->crash),
                             "fault schedule needs a crash callback");
          shared->crash(flat(event.replica));
          break;
        case FaultKind::kRestart:
          AQUEDUCT_CHECK_MSG(static_cast<bool>(shared->restart),
                             "fault schedule needs a restart callback");
          shared->restart(flat(event.replica));
          break;
        case FaultKind::kPartition: {
          std::vector<net::NodeId> a, b;
          a.reserve(event.side_a.size());
          b.reserve(event.side_b.size());
          for (const SlotRef ref : event.side_a)
            a.push_back(node_of(ref));
          for (const SlotRef ref : event.side_b)
            b.push_back(node_of(ref));
          net->partition(std::move(a), std::move(b));
          break;
        }
        case FaultKind::kHeal:
          net->heal();
          break;
        case FaultKind::kLoss:
          net->set_loss_probability(event.probability);
          break;
        case FaultKind::kLinkLoss:
          if (event.probability > 0.0) {
            net->set_link_loss(node_of(event.replica),
                               node_of(event.peer),
                               event.probability);
          } else {
            net->clear_link_loss(node_of(event.replica),
                                 node_of(event.peer));
          }
          break;
        case FaultKind::kInboundLoss:
          net->set_inbound_loss(node_of(event.replica),
                                event.probability);
          break;
        case FaultKind::kOutboundLoss:
          net->set_outbound_loss(node_of(event.replica),
                                 event.probability);
          break;
        case FaultKind::kLatencySpike: {
          const net::NodeId node = node_of(event.replica);
          net->set_node_latency(node, std::make_shared<sim::NormalDuration>(
                                          event.latency_mean,
                                          event.latency_std));
          exec.after(event.duration,
                    [node, net] { net->clear_node_latency(node); });
          break;
        }
        case FaultKind::kDegradeLink: {
          const net::NodeId from = node_of(event.replica);
          const net::NodeId to = node_of(event.peer);
          if (event.latency_mean > sim::Duration::zero()) {
            net->set_link_delay(from, to,
                                std::make_shared<sim::NormalDuration>(
                                    event.latency_mean, event.latency_std));
          }
          if (event.probability > 0.0) {
            net->set_link_loss(from, to, event.probability);
          }
          break;
        }
        case FaultKind::kPartialPartition:
          net->partial_partition(node_of(event.replica),
                                 node_of(event.peer));
          break;
        case FaultKind::kHealLink:
          net->heal_link(node_of(event.replica),
                         node_of(event.peer));
          break;
        case FaultKind::kDuplicateStorm:
          net->set_duplicate_probability(event.probability);
          break;
        case FaultKind::kReorder:
          if (event.latency_mean > sim::Duration::zero()) {
            net->set_reorder_window(event.latency_mean);
          }
          net->set_reorder_probability(event.probability);
          break;
        case FaultKind::kThrottleLink:
          net->set_link_throttle(node_of(event.replica),
                                 node_of(event.peer),
                                 event.latency_mean);
          break;
        case FaultKind::kHealGray:
          net->heal_gray();
          break;
      }
    });
  }
}

}  // namespace aqueduct::fault
