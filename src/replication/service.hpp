// Replica organization (paper Section 3, Figure 1).
//
// A replicated service uses three process groups:
//   * the primary replication group — the sequencer (leader) plus the
//     primary replicas; updates are multicast here and committed in GSN
//     order (strong consistency);
//   * the replication group — every replica of the service; the sequencer
//     broadcasts GSN assignments here and the lazy publisher propagates
//     state updates here;
//   * the QoS group — every replica plus every client; requests, replies
//     and performance publications travel here.
#pragma once

#include <cstdint>

#include "gcs/types.hpp"

namespace aqueduct::replication {

/// The three group ids of one replicated service.
struct ServiceGroups {
  gcs::GroupId primary;      // sequencer + primary replicas
  gcs::GroupId replication;  // all replicas
  gcs::GroupId qos;          // all replicas + all clients

  /// Convenience: carve three group ids out of a small integer service id.
  static ServiceGroups for_service(std::uint32_t service_id) {
    return ServiceGroups{gcs::GroupId{service_id * 16 + 1},
                         gcs::GroupId{service_id * 16 + 2},
                         gcs::GroupId{service_id * 16 + 3}};
  }
};

}  // namespace aqueduct::replication
