// Application-object interface hosted by each replica.
//
// The middleware is application-agnostic: operations, results, and
// snapshots are opaque messages. The gateway handler decides *when* an
// operation runs (GSN order for updates, staleness checks for reads); the
// object decides *what* it does.
#pragma once

#include <functional>
#include <memory>

#include "core/qos.hpp"
#include "net/message.hpp"

namespace aqueduct::replication {

class ReplicatedObject {
 public:
  virtual ~ReplicatedObject() = default;

  /// Applies an update operation (write-only or read-write) and returns its
  /// result. Called in commit (GSN) order on every primary replica.
  virtual net::MessagePtr apply_update(const net::MessagePtr& op) = 0;

  /// Executes a read-only operation against the current state.
  virtual net::MessagePtr apply_read(const net::MessagePtr& op) const = 0;

  /// Full-state snapshot for lazy propagation / state transfer.
  virtual net::MessagePtr snapshot() const = 0;

  /// Replaces the current state with a snapshot produced by snapshot() on
  /// another replica of the same object type.
  virtual void install_snapshot(const net::MessagePtr& snapshot) = 0;
};

using ObjectFactory = std::function<std::unique_ptr<ReplicatedObject>()>;

}  // namespace aqueduct::replication
