// FIFO-ordered timed consistency handler (paper Section 4, Figure 2).
//
// The framework supports multiple ordering guarantees as pluggable
// gateway handlers. Besides the sequencer-based sequential handler
// (ReplicaServer), this FIFO handler orders each client's updates by
// their issue order only — no sequencer, no total order. Replicas may
// interleave different clients' updates differently but agree on every
// per-client prefix (FIFO consistency), which suits services like the
// paper's per-account banking example.
//
// The consistency dimension a client can buy back is *session* freshness:
// a read carries the client's own update horizon (the sequence number of
// its latest update), and a replica answers only once it has applied that
// client's updates up to the horizon — read-your-writes. Primaries reach
// the horizon as soon as the update arrives; secondaries reach it with
// the next lazy state propagation.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "gcs/endpoint.hpp"
#include "replication/messages.hpp"
#include "replication/replicated_object.hpp"
#include "replication/service.hpp"
#include "sim/random.hpp"
#include "runtime/executor.hpp"
#include "runtime/periodic_task.hpp"

namespace aqueduct::replication {

// ---------------------------------------------------------------------------
// Wire messages (id block 0x3*; registered by
// replication::register_wire_codecs())
// ---------------------------------------------------------------------------

inline constexpr net::WireTypeId kWireFifoUpdate = 0x31;
inline constexpr net::WireTypeId kWireFifoRead = 0x32;
inline constexpr net::WireTypeId kWireFifoReply = 0x33;
inline constexpr net::WireTypeId kWireFifoLazy = 0x34;
inline constexpr net::WireTypeId kWireFifoGroupInfo = 0x35;

struct FifoUpdateRequest final : net::Message {
  RequestId id;
  net::MessagePtr op;
  std::string type_name() const override { return "fifo.update"; }
  net::WireTypeId wire_type() const override { return kWireFifoUpdate; }
  void encode(net::Writer& w) const override;
};

struct FifoReadRequest final : net::Message {
  RequestId id;
  net::MessagePtr op;
  /// Read-your-writes bound: the client's latest update sequence number.
  /// 0 = no session requirement (any replica state will do).
  std::uint64_t horizon = 0;
  std::string type_name() const override { return "fifo.read"; }
  net::WireTypeId wire_type() const override { return kWireFifoRead; }
  void encode(net::Writer& w) const override;
};

struct FifoReply final : net::Message {
  RequestId id;
  bool is_update = false;
  net::MessagePtr result;
  net::NodeId replica;
  sim::Duration t1 = sim::Duration::zero();
  bool deferred = false;
  std::string type_name() const override { return "fifo.reply"; }
  net::WireTypeId wire_type() const override { return kWireFifoReply; }
  void encode(net::Writer& w) const override;
};

/// Lazy state propagation: full snapshot plus the per-client horizons it
/// reflects.
struct FifoLazyUpdate final : net::Message {
  net::MessagePtr snapshot;
  std::map<net::NodeId, std::uint64_t> horizons;
  std::uint64_t lazy_seq = 0;
  std::string type_name() const override { return "fifo.lazy"; }
  net::WireTypeId wire_type() const override { return kWireFifoLazy; }
  void encode(net::Writer& w) const override;
};

/// Role map for the FIFO service (no sequencer role).
struct FifoGroupInfo final : net::Message {
  std::uint64_t epoch = 0;
  std::vector<net::NodeId> primaries;
  std::vector<net::NodeId> secondaries;
  net::NodeId lazy_publisher;
  std::string type_name() const override { return "fifo.groupinfo"; }
  net::WireTypeId wire_type() const override { return kWireFifoGroupInfo; }
  void encode(net::Writer& w) const override;
};

// ---------------------------------------------------------------------------
// Server-side handler
// ---------------------------------------------------------------------------

struct FifoReplicaConfig {
  std::shared_ptr<sim::DurationDistribution> service_time;
  sim::Duration lazy_update_interval = std::chrono::seconds(2);
  std::size_t cache_limit = 16384;
};

struct FifoReplicaStats {
  std::uint64_t updates_applied = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t deferred_reads = 0;
  std::uint64_t lazy_updates_published = 0;
  std::uint64_t lazy_updates_installed = 0;
  std::uint64_t duplicate_requests = 0;
};

class FifoReplicaServer {
 public:
  FifoReplicaServer(runtime::Executor& exec, gcs::Endpoint& endpoint,
                    ServiceGroups groups, bool is_primary,
                    std::unique_ptr<ReplicatedObject> object,
                    FifoReplicaConfig config);
  ~FifoReplicaServer();

  FifoReplicaServer(const FifoReplicaServer&) = delete;
  FifoReplicaServer& operator=(const FifoReplicaServer&) = delete;

  void start();
  void crash();

  net::NodeId id() const { return endpoint_.id(); }
  bool is_primary() const { return is_primary_; }
  bool is_lazy_publisher() const { return is_lazy_publisher_; }
  const FifoReplicaStats& stats() const { return stats_; }
  const ReplicatedObject& object() const { return *object_; }
  /// Highest applied update seq of `client` at this replica.
  std::uint64_t horizon_of(net::NodeId client) const;

 private:
  struct Job {
    bool is_update;
    RequestId id;
    net::MessagePtr op;
    sim::TimePoint arrival;
    sim::Duration tb = sim::Duration::zero();
    bool deferred = false;
  };
  struct PendingRead {
    std::shared_ptr<const FifoReadRequest> request;
    sim::TimePoint arrival;
    bool deferred = false;
  };

  void on_qos_deliver(net::NodeId from, const net::MessagePtr& msg);
  void on_replication_deliver(net::NodeId from, const net::MessagePtr& msg);
  void on_primary_view(const gcs::View& view);
  void handle_update(const std::shared_ptr<const FifoUpdateRequest>& request);
  void handle_read(const std::shared_ptr<const FifoReadRequest>& request);
  void handle_lazy(const FifoLazyUpdate& lazy);
  void try_ready_read(const RequestId& id);
  void recheck_waiting_reads();
  void enqueue(Job job);
  void maybe_start_service();
  void complete(const Job& job, sim::Duration service_time,
                sim::TimePoint service_start);
  void propagate_lazy_update();
  void publish_group_info();
  void reply_to(const RequestId& id, std::shared_ptr<const FifoReply> reply);
  void publish_perf(sim::Duration ts, sim::Duration tq, sim::Duration tb,
                    bool deferred);

  runtime::Executor& exec_;
  gcs::Endpoint& endpoint_;
  ServiceGroups groups_;
  bool is_primary_;
  std::unique_ptr<ReplicatedObject> object_;
  FifoReplicaConfig config_;
  sim::Rng rng_;

  gcs::Member* primary_member_ = nullptr;
  gcs::Member* replication_member_ = nullptr;
  gcs::Member* qos_member_ = nullptr;

  bool started_ = false;
  bool crashed_ = false;
  bool is_lazy_publisher_ = false;
  std::uint64_t group_info_epoch_ = 0;

  /// Per-client applied update horizon (read-your-writes bound).
  std::map<net::NodeId, std::uint64_t> horizons_;

  std::unordered_map<RequestId, PendingRead> pending_reads_;
  std::unordered_map<RequestId, std::shared_ptr<const FifoReply>> reply_cache_;
  std::deque<RequestId> reply_cache_order_;
  std::unordered_map<RequestId, std::shared_ptr<const FifoUpdateRequest>>
      inflight_updates_;  // dedup between arrival and apply

  std::deque<Job> queue_;
  bool busy_ = false;

  std::unique_ptr<runtime::PeriodicTask> lazy_task_;
  std::uint64_t lazy_seq_ = 0;

  FifoReplicaStats stats_;
};

}  // namespace aqueduct::replication
