// Wire encode/decode of the replication layer: the sequencer protocol
// (messages.hpp, 0x2*), the FIFO handler (fifo.hpp, 0x3*), and the example
// replicated objects (objects.hpp, 0x4*). Field order mirrors declaration
// order; encode(decode(bytes)) == bytes for every type here.
#include <memory>

#include "gcs/messages.hpp"
#include "net/codec.hpp"
#include "replication/fifo.hpp"
#include "replication/messages.hpp"
#include "replication/objects.hpp"

namespace aqueduct::replication {

namespace {

using net::Reader;
using net::Writer;

void encode_request_id(Writer& w, const RequestId& id) {
  w.node(id.client);
  w.u64(id.seq);
}

RequestId decode_request_id(Reader& r) {
  RequestId id;
  id.client = r.node();
  id.seq = r.u64();
  return id;
}

void encode_request_id_vector(Writer& w, const std::vector<RequestId>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const RequestId& id : v) encode_request_id(w, id);
}

std::vector<RequestId> decode_request_id_vector(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<RequestId> v;
  v.reserve(std::min<std::size_t>(n, r.remaining() / 12 + 1));
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(decode_request_id(r));
  return v;
}

void encode_str_str_map(Writer& w,
                        const std::map<std::string, std::string>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w.str(k);
    w.str(v);
  }
}

std::map<std::string, std::string> decode_str_str_map(Reader& r) {
  const std::uint32_t n = r.u32();
  std::map<std::string, std::string> m;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    m[std::move(k)] = r.str();
  }
  return m;
}

// ---- sequencer protocol (0x2*) ----

net::MessagePtr decode_update(Reader& r) {
  auto m = std::make_shared<UpdateRequest>();
  m->id = decode_request_id(r);
  m->op = net::decode_nested(r);
  return m;
}

net::MessagePtr decode_read(Reader& r) {
  auto m = std::make_shared<ReadRequest>();
  m->id = decode_request_id(r);
  m->op = net::decode_nested(r);
  m->staleness_threshold = r.u64();
  return m;
}

net::MessagePtr decode_gsn(Reader& r) {
  auto m = std::make_shared<GsnAssign>();
  m->id = decode_request_id(r);
  m->gsn = r.u64();
  m->is_update = r.boolean();
  return m;
}

net::MessagePtr decode_reply(Reader& r) {
  auto m = std::make_shared<Reply>();
  m->id = decode_request_id(r);
  m->is_update = r.boolean();
  m->result = net::decode_nested(r);
  m->replica = r.node();
  m->t1 = r.duration();
  m->ts = r.duration();
  m->tq = r.duration();
  m->tb = r.duration();
  m->deferred = r.boolean();
  m->staleness = r.u64();
  return m;
}

net::MessagePtr decode_lazy(Reader& r) {
  auto m = std::make_shared<LazyUpdate>();
  m->csn = r.u64();
  m->snapshot = net::decode_nested(r);
  m->lazy_seq = r.u64();
  return m;
}

net::MessagePtr decode_state_req(Reader&) {
  return std::make_shared<StateRequest>();
}

net::MessagePtr decode_state_snap(Reader& r) {
  auto m = std::make_shared<StateSnapshot>();
  m->csn = r.u64();
  m->gsn = r.u64();
  m->snapshot = net::decode_nested(r);
  m->committed = decode_request_id_vector(r);
  return m;
}

net::MessagePtr decode_perf(Reader& r) {
  auto m = std::make_shared<PerfPublication>();
  m->replica = r.node();
  m->has_sample = r.boolean();
  m->ts = r.duration();
  m->tq = r.duration();
  m->tb = r.duration();
  m->deferred = r.boolean();
  if (r.boolean()) {
    LazyInfo info;
    info.n_u = r.u32();
    info.t_u = r.duration();
    info.n_l = r.u32();
    info.t_l = r.duration();
    info.period = r.duration();
    m->lazy = info;
  }
  return m;
}

net::MessagePtr decode_groupinfo(Reader& r) {
  auto m = std::make_shared<GroupInfo>();
  m->epoch = r.u64();
  m->sequencer = r.node();
  m->primaries = net::decode_node_vector(r);
  m->secondaries = net::decode_node_vector(r);
  m->lazy_publisher = r.node();
  return m;
}

// ---- FIFO handler (0x3*) ----

net::MessagePtr decode_fifo_update(Reader& r) {
  auto m = std::make_shared<FifoUpdateRequest>();
  m->id = decode_request_id(r);
  m->op = net::decode_nested(r);
  return m;
}

net::MessagePtr decode_fifo_read(Reader& r) {
  auto m = std::make_shared<FifoReadRequest>();
  m->id = decode_request_id(r);
  m->op = net::decode_nested(r);
  m->horizon = r.u64();
  return m;
}

net::MessagePtr decode_fifo_reply(Reader& r) {
  auto m = std::make_shared<FifoReply>();
  m->id = decode_request_id(r);
  m->is_update = r.boolean();
  m->result = net::decode_nested(r);
  m->replica = r.node();
  m->t1 = r.duration();
  m->deferred = r.boolean();
  return m;
}

net::MessagePtr decode_fifo_lazy(Reader& r) {
  auto m = std::make_shared<FifoLazyUpdate>();
  m->snapshot = net::decode_nested(r);
  m->horizons = net::decode_node_u64_map(r);
  m->lazy_seq = r.u64();
  return m;
}

net::MessagePtr decode_fifo_groupinfo(Reader& r) {
  auto m = std::make_shared<FifoGroupInfo>();
  m->epoch = r.u64();
  m->primaries = net::decode_node_vector(r);
  m->secondaries = net::decode_node_vector(r);
  m->lazy_publisher = r.node();
  return m;
}

// ---- example objects (0x4*) ----

net::MessagePtr decode_kv_put(Reader& r) {
  auto m = std::make_shared<KvPut>();
  m->key = r.str();
  m->value = r.str();
  return m;
}

net::MessagePtr decode_kv_get(Reader& r) {
  auto m = std::make_shared<KvGet>();
  m->key = r.str();
  return m;
}

net::MessagePtr decode_kv_result(Reader& r) {
  auto m = std::make_shared<KvResult>();
  m->value = net::decode_optional_str(r);
  m->version = r.u64();
  return m;
}

net::MessagePtr decode_kv_snapshot(Reader& r) {
  auto m = std::make_shared<KvSnapshot>();
  m->entries = decode_str_str_map(r);
  m->version = r.u64();
  return m;
}

net::MessagePtr decode_doc_append(Reader& r) {
  auto m = std::make_shared<DocAppend>();
  m->line = r.str();
  return m;
}

net::MessagePtr decode_doc_read(Reader&) { return std::make_shared<DocRead>(); }

net::MessagePtr decode_doc_contents(Reader& r) {
  auto m = std::make_shared<DocContents>();
  const std::uint32_t n = r.u32();
  m->lines.reserve(std::min<std::size_t>(n, r.remaining() / 4 + 1));
  for (std::uint32_t i = 0; i < n; ++i) m->lines.push_back(r.str());
  m->version = r.u64();
  return m;
}

net::MessagePtr decode_ticker_set(Reader& r) {
  auto m = std::make_shared<TickerSet>();
  m->symbol = r.str();
  m->price = r.f64();
  return m;
}

net::MessagePtr decode_ticker_get(Reader& r) {
  auto m = std::make_shared<TickerGet>();
  m->symbol = r.str();
  return m;
}

net::MessagePtr decode_ticker_quote(Reader& r) {
  auto m = std::make_shared<TickerQuote>();
  m->symbol = r.str();
  if (r.boolean()) m->price = r.f64();
  m->version = r.u64();
  return m;
}

net::MessagePtr decode_ticker_snapshot(Reader& r) {
  auto m = std::make_shared<TickerSnapshot>();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string symbol = r.str();
    m->prices[std::move(symbol)] = r.f64();
  }
  m->version = r.u64();
  return m;
}

net::MessagePtr decode_reg_bump(Reader&) {
  return std::make_shared<RegisterBump>();
}

net::MessagePtr decode_reg_read(Reader&) {
  return std::make_shared<RegisterRead>();
}

net::MessagePtr decode_reg_value(Reader& r) {
  auto m = std::make_shared<RegisterValue>();
  m->value = r.u64();
  return m;
}

}  // namespace

// ---- sequencer protocol ----

void UpdateRequest::encode(Writer& w) const {
  encode_request_id(w, id);
  net::encode_nested(w, op);
}

void ReadRequest::encode(Writer& w) const {
  encode_request_id(w, id);
  net::encode_nested(w, op);
  w.u64(staleness_threshold);
}

void GsnAssign::encode(Writer& w) const {
  encode_request_id(w, id);
  w.u64(gsn);
  w.boolean(is_update);
}

void Reply::encode(Writer& w) const {
  encode_request_id(w, id);
  w.boolean(is_update);
  net::encode_nested(w, result);
  w.node(replica);
  w.duration(t1);
  w.duration(ts);
  w.duration(tq);
  w.duration(tb);
  w.boolean(deferred);
  w.u64(staleness);
}

void LazyUpdate::encode(Writer& w) const {
  w.u64(csn);
  net::encode_nested(w, snapshot);
  w.u64(lazy_seq);
}

void StateRequest::encode(Writer&) const {}

void StateSnapshot::encode(Writer& w) const {
  w.u64(csn);
  w.u64(gsn);
  net::encode_nested(w, snapshot);
  encode_request_id_vector(w, committed);
}

void PerfPublication::encode(Writer& w) const {
  w.node(replica);
  w.boolean(has_sample);
  w.duration(ts);
  w.duration(tq);
  w.duration(tb);
  w.boolean(deferred);
  w.boolean(lazy.has_value());
  if (lazy) {
    w.u32(lazy->n_u);
    w.duration(lazy->t_u);
    w.u32(lazy->n_l);
    w.duration(lazy->t_l);
    w.duration(lazy->period);
  }
}

void GroupInfo::encode(Writer& w) const {
  w.u64(epoch);
  w.node(sequencer);
  net::encode_node_vector(w, primaries);
  net::encode_node_vector(w, secondaries);
  w.node(lazy_publisher);
}

// ---- FIFO handler ----

void FifoUpdateRequest::encode(Writer& w) const {
  encode_request_id(w, id);
  net::encode_nested(w, op);
}

void FifoReadRequest::encode(Writer& w) const {
  encode_request_id(w, id);
  net::encode_nested(w, op);
  w.u64(horizon);
}

void FifoReply::encode(Writer& w) const {
  encode_request_id(w, id);
  w.boolean(is_update);
  net::encode_nested(w, result);
  w.node(replica);
  w.duration(t1);
  w.boolean(deferred);
}

void FifoLazyUpdate::encode(Writer& w) const {
  net::encode_nested(w, snapshot);
  net::encode_node_u64_map(w, horizons);
  w.u64(lazy_seq);
}

void FifoGroupInfo::encode(Writer& w) const {
  w.u64(epoch);
  net::encode_node_vector(w, primaries);
  net::encode_node_vector(w, secondaries);
  w.node(lazy_publisher);
}

// ---- example objects ----

void KvPut::encode(Writer& w) const {
  w.str(key);
  w.str(value);
}

void KvGet::encode(Writer& w) const { w.str(key); }

void KvResult::encode(Writer& w) const {
  net::encode_optional_str(w, value);
  w.u64(version);
}

void KvSnapshot::encode(Writer& w) const {
  encode_str_str_map(w, entries);
  w.u64(version);
}

void DocAppend::encode(Writer& w) const { w.str(line); }

void DocRead::encode(Writer&) const {}

void DocContents::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(lines.size()));
  for (const std::string& line : lines) w.str(line);
  w.u64(version);
}

void TickerSet::encode(Writer& w) const {
  w.str(symbol);
  w.f64(price);
}

void TickerGet::encode(Writer& w) const { w.str(symbol); }

void TickerQuote::encode(Writer& w) const {
  w.str(symbol);
  w.boolean(price.has_value());
  if (price) w.f64(*price);
  w.u64(version);
}

void TickerSnapshot::encode(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(prices.size()));
  for (const auto& [symbol, price] : prices) {
    w.str(symbol);
    w.f64(price);
  }
  w.u64(version);
}

void RegisterBump::encode(Writer&) const {}

void RegisterRead::encode(Writer&) const {}

void RegisterValue::encode(Writer& w) const { w.u64(value); }

void register_wire_codecs() {
  gcs::register_wire_codecs();  // gcs frames carry these types as payloads
  auto& reg = net::CodecRegistry::global();
  reg.add(kWireUpdate, "repl.update", decode_update);
  reg.add(kWireRead, "repl.read", decode_read);
  reg.add(kWireGsnAssign, "repl.gsn", decode_gsn);
  reg.add(kWireReply, "repl.reply", decode_reply);
  reg.add(kWireLazyUpdate, "repl.lazy", decode_lazy);
  reg.add(kWireStateRequest, "repl.state_req", decode_state_req);
  reg.add(kWireStateSnapshot, "repl.state_snap", decode_state_snap);
  reg.add(kWirePerf, "repl.perf", decode_perf);
  reg.add(kWireGroupInfo, "repl.groupinfo", decode_groupinfo);
  reg.add(kWireFifoUpdate, "fifo.update", decode_fifo_update);
  reg.add(kWireFifoRead, "fifo.read", decode_fifo_read);
  reg.add(kWireFifoReply, "fifo.reply", decode_fifo_reply);
  reg.add(kWireFifoLazy, "fifo.lazy", decode_fifo_lazy);
  reg.add(kWireFifoGroupInfo, "fifo.groupinfo", decode_fifo_groupinfo);
  reg.add(kWireKvPut, "kv.put", decode_kv_put);
  reg.add(kWireKvGet, "kv.get", decode_kv_get);
  reg.add(kWireKvResult, "kv.result", decode_kv_result);
  reg.add(kWireKvSnapshot, "kv.snapshot", decode_kv_snapshot);
  reg.add(kWireDocAppend, "doc.append", decode_doc_append);
  reg.add(kWireDocRead, "doc.read", decode_doc_read);
  reg.add(kWireDocContents, "doc.contents", decode_doc_contents);
  reg.add(kWireTickerSet, "ticker.set", decode_ticker_set);
  reg.add(kWireTickerGet, "ticker.get", decode_ticker_get);
  reg.add(kWireTickerQuote, "ticker.quote", decode_ticker_quote);
  reg.add(kWireTickerSnapshot, "ticker.snapshot", decode_ticker_snapshot);
  reg.add(kWireRegisterBump, "reg.bump", decode_reg_bump);
  reg.add(kWireRegisterRead, "reg.read", decode_reg_read);
  reg.add(kWireRegisterValue, "reg.value", decode_reg_value);
}

}  // namespace aqueduct::replication
