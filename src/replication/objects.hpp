// Ready-made replicated objects used by the examples, tests, and benches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "replication/replicated_object.hpp"

namespace aqueduct::replication {

// Wire type ids of the example objects (block 0x4*; registered by
// replication::register_wire_codecs()). Append-only: never renumber.
inline constexpr net::WireTypeId kWireKvPut = 0x41;
inline constexpr net::WireTypeId kWireKvGet = 0x42;
inline constexpr net::WireTypeId kWireKvResult = 0x43;
inline constexpr net::WireTypeId kWireKvSnapshot = 0x44;
inline constexpr net::WireTypeId kWireDocAppend = 0x45;
inline constexpr net::WireTypeId kWireDocRead = 0x46;
inline constexpr net::WireTypeId kWireDocContents = 0x47;
inline constexpr net::WireTypeId kWireTickerSet = 0x48;
inline constexpr net::WireTypeId kWireTickerGet = 0x49;
inline constexpr net::WireTypeId kWireTickerQuote = 0x4a;
inline constexpr net::WireTypeId kWireTickerSnapshot = 0x4b;
inline constexpr net::WireTypeId kWireRegisterBump = 0x4c;
inline constexpr net::WireTypeId kWireRegisterRead = 0x4d;
inline constexpr net::WireTypeId kWireRegisterValue = 0x4e;

// ---------------------------------------------------------------------------
// Versioned key-value store
// ---------------------------------------------------------------------------

struct KvPut final : net::Message {
  std::string key;
  std::string value;
  std::string type_name() const override { return "kv.put"; }
  net::WireTypeId wire_type() const override { return kWireKvPut; }
  void encode(net::Writer& w) const override;
};

struct KvGet final : net::Message {
  std::string key;
  std::string type_name() const override { return "kv.get"; }
  net::WireTypeId wire_type() const override { return kWireKvGet; }
  void encode(net::Writer& w) const override;
};

struct KvResult final : net::Message {
  std::optional<std::string> value;
  /// Number of updates applied to the store when this result was produced.
  std::uint64_t version = 0;
  std::string type_name() const override { return "kv.result"; }
  net::WireTypeId wire_type() const override { return kWireKvResult; }
  void encode(net::Writer& w) const override;
};

struct KvSnapshot final : net::Message {
  std::map<std::string, std::string> entries;
  std::uint64_t version = 0;
  std::string type_name() const override { return "kv.snapshot"; }
  net::WireTypeId wire_type() const override { return kWireKvSnapshot; }
  void encode(net::Writer& w) const override;
};

/// A string->string store whose version counts applied updates.
class KeyValueStore final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t version() const { return version_; }
  std::size_t size() const { return entries_.size(); }
  /// Full contents — lets shard tests assert that a group only ever holds
  /// keys its shard owns (no cross-shard leakage).
  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
  std::uint64_t version_ = 0;
};

// ---------------------------------------------------------------------------
// Shared document (the paper's Section 2 motivating example)
// ---------------------------------------------------------------------------

struct DocAppend final : net::Message {
  std::string line;
  std::string type_name() const override { return "doc.append"; }
  net::WireTypeId wire_type() const override { return kWireDocAppend; }
  void encode(net::Writer& w) const override;
};

struct DocRead final : net::Message {
  std::string type_name() const override { return "doc.read"; }
  net::WireTypeId wire_type() const override { return kWireDocRead; }
  void encode(net::Writer& w) const override;
};

struct DocContents final : net::Message {
  std::vector<std::string> lines;
  std::uint64_t version = 0;
  std::string type_name() const override { return "doc.contents"; }
  net::WireTypeId wire_type() const override { return kWireDocContents; }
  void encode(net::Writer& w) const override;
};

/// An append-only shared document; each append is one version.
class SharedDocument final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t version() const { return static_cast<std::uint64_t>(lines_.size()); }

 private:
  std::vector<std::string> lines_;
};

// ---------------------------------------------------------------------------
// Stock ticker (real-time database example from the paper's introduction)
// ---------------------------------------------------------------------------

struct TickerSet final : net::Message {
  std::string symbol;
  double price = 0.0;
  std::string type_name() const override { return "ticker.set"; }
  net::WireTypeId wire_type() const override { return kWireTickerSet; }
  void encode(net::Writer& w) const override;
};

struct TickerGet final : net::Message {
  std::string symbol;
  std::string type_name() const override { return "ticker.get"; }
  net::WireTypeId wire_type() const override { return kWireTickerGet; }
  void encode(net::Writer& w) const override;
};

struct TickerQuote final : net::Message {
  std::string symbol;
  std::optional<double> price;
  std::uint64_t version = 0;  // updates applied when the quote was taken
  std::string type_name() const override { return "ticker.quote"; }
  net::WireTypeId wire_type() const override { return kWireTickerQuote; }
  void encode(net::Writer& w) const override;
};

struct TickerSnapshot final : net::Message {
  std::map<std::string, double> prices;
  std::uint64_t version = 0;
  std::string type_name() const override { return "ticker.snapshot"; }
  net::WireTypeId wire_type() const override { return kWireTickerSnapshot; }
  void encode(net::Writer& w) const override;
};

/// Latest-price table for a set of stock symbols.
class StockTicker final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t version() const { return version_; }

 private:
  std::map<std::string, double> prices_;
  std::uint64_t version_ = 0;
};

// ---------------------------------------------------------------------------
// Versioned register (minimal object for tests: the value is the version)
// ---------------------------------------------------------------------------

struct RegisterBump final : net::Message {
  std::string type_name() const override { return "reg.bump"; }
  net::WireTypeId wire_type() const override { return kWireRegisterBump; }
  void encode(net::Writer& w) const override;
};

struct RegisterRead final : net::Message {
  std::string type_name() const override { return "reg.read"; }
  net::WireTypeId wire_type() const override { return kWireRegisterRead; }
  void encode(net::Writer& w) const override;
};

struct RegisterValue final : net::Message {
  std::uint64_t value = 0;
  std::string type_name() const override { return "reg.value"; }
  net::WireTypeId wire_type() const override { return kWireRegisterValue; }
  void encode(net::Writer& w) const override;
};

/// Counts its own updates; reads return the count. Tests use it to verify
/// ordering and staleness invariants directly.
class VersionedRegister final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace aqueduct::replication
