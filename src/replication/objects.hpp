// Ready-made replicated objects used by the examples, tests, and benches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "replication/replicated_object.hpp"

namespace aqueduct::replication {

// ---------------------------------------------------------------------------
// Versioned key-value store
// ---------------------------------------------------------------------------

struct KvPut final : net::Message {
  std::string key;
  std::string value;
  std::string type_name() const override { return "kv.put"; }
  std::size_t wire_size() const override { return 16 + key.size() + value.size(); }
};

struct KvGet final : net::Message {
  std::string key;
  std::string type_name() const override { return "kv.get"; }
  std::size_t wire_size() const override { return 16 + key.size(); }
};

struct KvResult final : net::Message {
  std::optional<std::string> value;
  /// Number of updates applied to the store when this result was produced.
  std::uint64_t version = 0;
  std::string type_name() const override { return "kv.result"; }
};

struct KvSnapshot final : net::Message {
  std::map<std::string, std::string> entries;
  std::uint64_t version = 0;
  std::string type_name() const override { return "kv.snapshot"; }
  std::size_t wire_size() const override { return 16 + 32 * entries.size(); }
};

/// A string->string store whose version counts applied updates.
class KeyValueStore final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t version() const { return version_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::string> entries_;
  std::uint64_t version_ = 0;
};

// ---------------------------------------------------------------------------
// Shared document (the paper's Section 2 motivating example)
// ---------------------------------------------------------------------------

struct DocAppend final : net::Message {
  std::string line;
  std::string type_name() const override { return "doc.append"; }
  std::size_t wire_size() const override { return 16 + line.size(); }
};

struct DocRead final : net::Message {
  std::string type_name() const override { return "doc.read"; }
};

struct DocContents final : net::Message {
  std::vector<std::string> lines;
  std::uint64_t version = 0;
  std::string type_name() const override { return "doc.contents"; }
  std::size_t wire_size() const override {
    std::size_t n = 16;
    for (const auto& l : lines) n += l.size();
    return n;
  }
};

/// An append-only shared document; each append is one version.
class SharedDocument final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t version() const { return static_cast<std::uint64_t>(lines_.size()); }

 private:
  std::vector<std::string> lines_;
};

// ---------------------------------------------------------------------------
// Stock ticker (real-time database example from the paper's introduction)
// ---------------------------------------------------------------------------

struct TickerSet final : net::Message {
  std::string symbol;
  double price = 0.0;
  std::string type_name() const override { return "ticker.set"; }
};

struct TickerGet final : net::Message {
  std::string symbol;
  std::string type_name() const override { return "ticker.get"; }
};

struct TickerQuote final : net::Message {
  std::string symbol;
  std::optional<double> price;
  std::uint64_t version = 0;  // updates applied when the quote was taken
  std::string type_name() const override { return "ticker.quote"; }
};

struct TickerSnapshot final : net::Message {
  std::map<std::string, double> prices;
  std::uint64_t version = 0;
  std::string type_name() const override { return "ticker.snapshot"; }
};

/// Latest-price table for a set of stock symbols.
class StockTicker final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t version() const { return version_; }

 private:
  std::map<std::string, double> prices_;
  std::uint64_t version_ = 0;
};

// ---------------------------------------------------------------------------
// Versioned register (minimal object for tests: the value is the version)
// ---------------------------------------------------------------------------

struct RegisterBump final : net::Message {
  std::string type_name() const override { return "reg.bump"; }
};

struct RegisterRead final : net::Message {
  std::string type_name() const override { return "reg.read"; }
};

struct RegisterValue final : net::Message {
  std::uint64_t value = 0;
  std::string type_name() const override { return "reg.value"; }
};

/// Counts its own updates; reads return the count. Tests use it to verify
/// ordering and staleness invariants directly.
class VersionedRegister final : public ReplicatedObject {
 public:
  net::MessagePtr apply_update(const net::MessagePtr& op) override;
  net::MessagePtr apply_read(const net::MessagePtr& op) const override;
  net::MessagePtr snapshot() const override;
  void install_snapshot(const net::MessagePtr& snapshot) override;

  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace aqueduct::replication
