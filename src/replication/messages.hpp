// Middleware protocol messages exchanged between client and server gateway
// handlers (paper Sections 4 and 5.4).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/qos.hpp"
#include "net/message.hpp"
#include "net/node.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace aqueduct::replication {

// Wire type ids of the sequencer-protocol messages (block 0x2*), the FIFO
// handler's messages (0x3*, fifo.hpp), and the example replicated objects
// (0x4*, objects.hpp). Append-only: never renumber, never reuse.
inline constexpr net::WireTypeId kWireUpdate = 0x21;
inline constexpr net::WireTypeId kWireRead = 0x22;
inline constexpr net::WireTypeId kWireGsnAssign = 0x23;
inline constexpr net::WireTypeId kWireReply = 0x24;
inline constexpr net::WireTypeId kWireLazyUpdate = 0x25;
inline constexpr net::WireTypeId kWireStateRequest = 0x26;
inline constexpr net::WireTypeId kWireStateSnapshot = 0x27;
inline constexpr net::WireTypeId kWirePerf = 0x28;
inline constexpr net::WireTypeId kWireGroupInfo = 0x29;

/// Registers every replication-layer decoder (sequencer protocol, FIFO
/// handler, example objects) in the global net::CodecRegistry, plus the
/// gcs decoders the transport needs below them. Idempotent.
void register_wire_codecs();

/// Globally unique request identity: issuing client plus a per-client
/// counter. Used for GSN assignment, deduplication of retries, and
/// matching replies.
struct RequestId {
  net::NodeId client;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const RequestId&, const RequestId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const RequestId& id) {
  return os << id.client << "#" << id.seq;
}

/// The request's trace identity: derived, not stored, so every layer that
/// sees the RequestId can emit span events without extra plumbing.
constexpr obs::TraceId trace_of(const RequestId& id) {
  return obs::make_trace_id(id.client, id.seq);
}

/// Update operation, sent point-to-point to every member of the primary
/// group (including the sequencer, which assigns the GSN).
struct UpdateRequest final : net::Message {
  RequestId id;
  net::MessagePtr op;
  std::string type_name() const override { return "repl.update"; }
  net::WireTypeId wire_type() const override { return kWireUpdate; }
  void encode(net::Writer& w) const override;
};

/// Read-only operation, sent to the sequencer plus the selected replica
/// subset K.
struct ReadRequest final : net::Message {
  RequestId id;
  net::MessagePtr op;
  /// Client's staleness threshold `a`; the replica serves immediately only
  /// if its state is at most this stale.
  core::Staleness staleness_threshold = 0;
  std::string type_name() const override { return "repl.read"; }
  net::WireTypeId wire_type() const override { return kWireRead; }
  void encode(net::Writer& w) const override;
};

/// Sequencer broadcast on the replication group. For an update the GSN was
/// advanced; for a read it is the current GSN (not advanced) that replicas
/// use to measure their staleness.
struct GsnAssign final : net::Message {
  RequestId id;
  core::Gsn gsn = 0;
  bool is_update = false;
  std::string type_name() const override { return "repl.gsn"; }
  net::WireTypeId wire_type() const override { return kWireGsnAssign; }
  void encode(net::Writer& w) const override;
};

/// Reply from a replica to the issuing client. Carries the piggybacked
/// server-side latency t1 = ts + tq + tb used by the client to compute the
/// two-way gateway delay tg = tp - tm - t1 (Section 5.4).
struct Reply final : net::Message {
  RequestId id;
  bool is_update = false;
  net::MessagePtr result;
  net::NodeId replica;
  sim::Duration t1 = sim::Duration::zero();
  /// Decomposition of t1 (t1 == ts + tq + tb), piggybacked so the client
  /// gateway can report the per-request latency breakdown of the paper's
  /// response-time model without a second round trip.
  sim::Duration ts = sim::Duration::zero();  // service time S
  sim::Duration tq = sim::Duration::zero();  // queueing delay W
  sim::Duration tb = sim::Duration::zero();  // lazy wait U (deferred reads)
  /// True if the replica performed a deferred read (waited for a lazy
  /// update before responding).
  bool deferred = false;
  /// Staleness of the replica state the response was served from
  /// (my_GSN - my_CSN at service time); lets clients and tests verify the
  /// staleness bound end to end.
  core::Staleness staleness = 0;
  std::string type_name() const override { return "repl.reply"; }
  net::WireTypeId wire_type() const override { return kWireReply; }
  void encode(net::Writer& w) const override;
};

/// Lazy state propagation from the lazy publisher to the secondary group
/// (multicast on the replication group; primaries ignore it).
struct LazyUpdate final : net::Message {
  core::Csn csn = 0;
  net::MessagePtr snapshot;
  std::uint64_t lazy_seq = 0;  // ordinal of this propagation
  std::string type_name() const override { return "repl.lazy"; }
  net::WireTypeId wire_type() const override { return kWireLazyUpdate; }
  void encode(net::Writer& w) const override;
};

/// Recovery: a rejoining primary asks a live primary for its state
/// (point-to-point on the replication group). The responder is chosen from
/// the latest GroupInfo role map; any non-recovering primary may answer.
struct StateRequest final : net::Message {
  std::string type_name() const override { return "repl.state_req"; }
  net::WireTypeId wire_type() const override { return kWireStateRequest; }
  void encode(net::Writer& w) const override;
};

/// Recovery: full state handed to a rejoining primary. Carries everything
/// the transfer barrier needs to guarantee no GSN is executed twice: the
/// object snapshot with its CSN/GSN position, plus the responder's
/// committed request ids so re-broadcast assignments of already-committed
/// updates dedup instead of re-executing.
struct StateSnapshot final : net::Message {
  core::Csn csn = 0;
  core::Gsn gsn = 0;
  net::MessagePtr snapshot;
  std::vector<RequestId> committed;
  std::string type_name() const override { return "repl.state_snap"; }
  net::WireTypeId wire_type() const override { return kWireStateSnapshot; }
  void encode(net::Writer& w) const override;
};

/// Extra fields in the lazy publisher's performance broadcasts
/// (Section 5.4.1): <n_u, t_u> feeds the arrival-rate estimator,
/// <n_L, t_L> plus the lazy-update period T_L feed the elapsed-interval
/// tracker.
struct LazyInfo {
  std::uint32_t n_u = 0;
  sim::Duration t_u = sim::Duration::zero();
  std::uint32_t n_l = 0;
  sim::Duration t_l = sim::Duration::zero();
  sim::Duration period = sim::Duration::zero();  // T_L
};

/// Performance measurements published by a replica to all clients whenever
/// it completes servicing a read (Section 5.4), and periodically by the
/// lazy publisher to keep the staleness estimators fresh.
struct PerfPublication final : net::Message {
  net::NodeId replica;
  /// True when this publication carries a fresh (ts, tq, tb) sample.
  bool has_sample = false;
  sim::Duration ts = sim::Duration::zero();
  sim::Duration tq = sim::Duration::zero();
  sim::Duration tb = sim::Duration::zero();
  bool deferred = false;
  std::optional<LazyInfo> lazy;
  std::string type_name() const override { return "repl.perf"; }
  net::WireTypeId wire_type() const override { return kWirePerf; }
  void encode(net::Writer& w) const override;
};

/// Service configuration published by the sequencer on the QoS group so
/// clients learn the current roles (stand-in for the AQuA dependability
/// manager's configuration distribution).
struct GroupInfo final : net::Message {
  std::uint64_t epoch = 0;
  net::NodeId sequencer;
  std::vector<net::NodeId> primaries;  // excluding the sequencer
  std::vector<net::NodeId> secondaries;
  net::NodeId lazy_publisher;
  std::string type_name() const override { return "repl.groupinfo"; }
  net::WireTypeId wire_type() const override { return kWireGroupInfo; }
  void encode(net::Writer& w) const override;
};

}  // namespace aqueduct::replication

template <>
struct std::hash<aqueduct::replication::RequestId> {
  std::size_t operator()(const aqueduct::replication::RequestId& id) const noexcept {
    return std::hash<aqueduct::net::NodeId>{}(id.client) * 1000003u ^
           std::hash<std::uint64_t>{}(id.seq);
  }
};
