#include "replication/objects.hpp"

#include "sim/check.hpp"

namespace aqueduct::replication {

// ---------------------------------------------------------------------------
// KeyValueStore
// ---------------------------------------------------------------------------

net::MessagePtr KeyValueStore::apply_update(const net::MessagePtr& op) {
  auto put = net::message_cast<KvPut>(op);
  AQUEDUCT_CHECK_MSG(put != nullptr, "KeyValueStore: unknown update op");
  entries_[put->key] = put->value;
  ++version_;
  auto result = std::make_shared<KvResult>();
  result->value = put->value;
  result->version = version_;
  return result;
}

net::MessagePtr KeyValueStore::apply_read(const net::MessagePtr& op) const {
  auto get = net::message_cast<KvGet>(op);
  AQUEDUCT_CHECK_MSG(get != nullptr, "KeyValueStore: unknown read op");
  auto result = std::make_shared<KvResult>();
  if (auto it = entries_.find(get->key); it != entries_.end()) {
    result->value = it->second;
  }
  result->version = version_;
  return result;
}

net::MessagePtr KeyValueStore::snapshot() const {
  auto snap = std::make_shared<KvSnapshot>();
  snap->entries = entries_;
  snap->version = version_;
  return snap;
}

void KeyValueStore::install_snapshot(const net::MessagePtr& snapshot) {
  auto snap = net::message_cast<KvSnapshot>(snapshot);
  AQUEDUCT_CHECK_MSG(snap != nullptr, "KeyValueStore: foreign snapshot");
  entries_ = snap->entries;
  version_ = snap->version;
}

// ---------------------------------------------------------------------------
// SharedDocument
// ---------------------------------------------------------------------------

net::MessagePtr SharedDocument::apply_update(const net::MessagePtr& op) {
  auto append = net::message_cast<DocAppend>(op);
  AQUEDUCT_CHECK_MSG(append != nullptr, "SharedDocument: unknown update op");
  lines_.push_back(append->line);
  auto result = std::make_shared<DocContents>();
  result->version = version();
  return result;
}

net::MessagePtr SharedDocument::apply_read(const net::MessagePtr& op) const {
  AQUEDUCT_CHECK_MSG(net::message_cast<DocRead>(op) != nullptr,
                     "SharedDocument: unknown read op");
  auto result = std::make_shared<DocContents>();
  result->lines = lines_;
  result->version = version();
  return result;
}

net::MessagePtr SharedDocument::snapshot() const {
  auto snap = std::make_shared<DocContents>();
  snap->lines = lines_;
  snap->version = version();
  return snap;
}

void SharedDocument::install_snapshot(const net::MessagePtr& snapshot) {
  auto snap = net::message_cast<DocContents>(snapshot);
  AQUEDUCT_CHECK_MSG(snap != nullptr, "SharedDocument: foreign snapshot");
  lines_ = snap->lines;
}

// ---------------------------------------------------------------------------
// StockTicker
// ---------------------------------------------------------------------------

net::MessagePtr StockTicker::apply_update(const net::MessagePtr& op) {
  auto set = net::message_cast<TickerSet>(op);
  AQUEDUCT_CHECK_MSG(set != nullptr, "StockTicker: unknown update op");
  prices_[set->symbol] = set->price;
  ++version_;
  auto quote = std::make_shared<TickerQuote>();
  quote->symbol = set->symbol;
  quote->price = set->price;
  quote->version = version_;
  return quote;
}

net::MessagePtr StockTicker::apply_read(const net::MessagePtr& op) const {
  auto get = net::message_cast<TickerGet>(op);
  AQUEDUCT_CHECK_MSG(get != nullptr, "StockTicker: unknown read op");
  auto quote = std::make_shared<TickerQuote>();
  quote->symbol = get->symbol;
  if (auto it = prices_.find(get->symbol); it != prices_.end()) {
    quote->price = it->second;
  }
  quote->version = version_;
  return quote;
}

net::MessagePtr StockTicker::snapshot() const {
  auto snap = std::make_shared<TickerSnapshot>();
  snap->prices = prices_;
  snap->version = version_;
  return snap;
}

void StockTicker::install_snapshot(const net::MessagePtr& snapshot) {
  auto snap = net::message_cast<TickerSnapshot>(snapshot);
  AQUEDUCT_CHECK_MSG(snap != nullptr, "StockTicker: foreign snapshot");
  prices_ = snap->prices;
  version_ = snap->version;
}

// ---------------------------------------------------------------------------
// VersionedRegister
// ---------------------------------------------------------------------------

net::MessagePtr VersionedRegister::apply_update(const net::MessagePtr& op) {
  AQUEDUCT_CHECK_MSG(net::message_cast<RegisterBump>(op) != nullptr,
                     "VersionedRegister: unknown update op");
  ++value_;
  auto result = std::make_shared<RegisterValue>();
  result->value = value_;
  return result;
}

net::MessagePtr VersionedRegister::apply_read(const net::MessagePtr& op) const {
  AQUEDUCT_CHECK_MSG(net::message_cast<RegisterRead>(op) != nullptr,
                     "VersionedRegister: unknown read op");
  auto result = std::make_shared<RegisterValue>();
  result->value = value_;
  return result;
}

net::MessagePtr VersionedRegister::snapshot() const {
  auto result = std::make_shared<RegisterValue>();
  result->value = value_;
  return result;
}

void VersionedRegister::install_snapshot(const net::MessagePtr& snapshot) {
  auto snap = net::message_cast<RegisterValue>(snapshot);
  AQUEDUCT_CHECK_MSG(snap != nullptr, "VersionedRegister: foreign snapshot");
  value_ = snap->value;
}

}  // namespace aqueduct::replication
