// Server-side gateway handler (paper Section 4).
//
// One ReplicaServer per replica process. Depending on its group roles it
// acts as:
//   * sequencer — leader of the primary group; assigns GSNs to updates,
//     broadcasts the current GSN for reads, never services requests;
//   * primary replica — commits updates in GSN order, serves reads from
//     always-fresh state;
//   * secondary replica — serves reads when its state satisfies the
//     client's staleness threshold, otherwise performs a deferred read
//     (buffers until the next lazy update);
//   * lazy publisher — the designated primary-group member that
//     periodically propagates its state to the secondary group and
//     publishes the <n_u, t_u>/<n_L, t_L> measurements clients use for
//     staleness estimation.
//
// Roles are derived from the primary-group view, so they fail over
// automatically: a sequencer crash elects the next primary as leader (and
// thus sequencer), a lazy-publisher crash re-designates the last member.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "core/qos.hpp"
#include "gcs/endpoint.hpp"
#include "obs/observability.hpp"
#include "replication/messages.hpp"
#include "replication/replicated_object.hpp"
#include "replication/service.hpp"
#include "sim/random.hpp"
#include "runtime/executor.hpp"
#include "runtime/periodic_task.hpp"

namespace aqueduct::replication {

struct ReplicaConfig {
  /// Simulated request-processing delay (the paper's experiments draw it
  /// from a normal distribution with mean 100 ms to model background
  /// load). Shared by reads and updates; the sequencer's bookkeeping is
  /// free.
  std::shared_ptr<sim::DurationDistribution> service_time;
  /// Lazy-update propagation period T_L (effective only while this replica
  /// is the lazy publisher).
  sim::Duration lazy_update_interval = std::chrono::seconds(4);
  /// Period of the lazy publisher's standalone performance broadcasts
  /// (keeps client staleness estimators fresh even between reads).
  sim::Duration perf_publish_period = std::chrono::milliseconds(500);
  /// Bound on the dedup/reply caches.
  std::size_t cache_limit = 16384;
  /// How long a rejoining primary waits before re-sending a StateRequest
  /// (covers lost requests, unknown roles, and a mid-transfer responder
  /// crash).
  sim::Duration state_transfer_retry = std::chrono::milliseconds(500);
  /// Period of the commit-stall watchdog: a primary whose commit pipeline
  /// has been stuck on the same missing GSN/payload for two consecutive
  /// checks re-enters recovery and jumps the gap via a fresh snapshot.
  sim::Duration commit_stall_check = std::chrono::seconds(1);
};

struct ReplicaStats {
  std::uint64_t updates_committed = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t deferred_reads = 0;
  std::uint64_t gsn_assigned = 0;
  std::uint64_t lazy_updates_published = 0;
  std::uint64_t lazy_updates_installed = 0;
  std::uint64_t duplicate_requests = 0;
  std::uint64_t gsn_conflicts = 0;  // must stay 0 — safety-net counter
  // Recovery / state transfer.
  std::uint64_t state_transfers_requested = 0;
  std::uint64_t state_snapshots_served = 0;
  std::uint64_t state_snapshots_installed = 0;
  std::uint64_t recoveries_completed = 0;
  /// Times a group ejected this still-running replica (gray failure: the
  /// failure detector mistook a slow / partially partitioned process for
  /// dead). The replica treats each as a self-crash; the harness restarts
  /// the slot so it rejoins with a fresh identity.
  std::uint64_t evictions = 0;
};

class ReplicaServer {
 public:
  /// `is_primary` decides which groups this replica joins: primaries (and
  /// the sequencer) join the primary group; everyone joins the replication
  /// and QoS groups. Call start() to join.
  ReplicaServer(runtime::Executor& exec, gcs::Endpoint& endpoint,
                ServiceGroups groups, bool is_primary,
                std::unique_ptr<ReplicatedObject> object, ReplicaConfig config);
  ~ReplicaServer();

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Joins the service's groups and begins processing.
  void start();

  /// Fail-stop crash (for failure-injection experiments).
  void crash();

  net::NodeId id() const { return endpoint_.id(); }
  bool crashed() const { return crashed_; }
  bool is_primary() const { return is_primary_; }
  /// True while the replica is (re)joining an existing service and has not
  /// yet synchronized its state (transfer barrier up: no commits served).
  bool recovering() const { return recovering_; }
  /// When the transfer barrier last dropped (kEpoch if never raised).
  sim::TimePoint recovered_at() const { return recovered_at_; }
  /// Arrival time of the first read request addressed to this replica —
  /// for a reborn replica this is the client re-admission instant.
  sim::TimePoint first_read_request_at() const { return first_read_request_at_; }
  bool is_sequencer() const { return is_sequencer_; }
  bool is_lazy_publisher() const { return is_lazy_publisher_; }
  core::Gsn gsn() const { return my_gsn_; }
  core::Csn csn() const { return my_csn_; }
  const ReplicaStats& stats() const { return stats_; }
  const ReplicatedObject& object() const { return *object_; }
  sim::Duration lazy_update_interval() const { return config_.lazy_update_interval; }

  /// Changes T_L at runtime (the consistency/timeliness tuning knob).
  void set_lazy_update_interval(sim::Duration interval);

  /// Registers a hook fired right after this replica crash()es itself
  /// because a group evicted it while it was still running (see
  /// ReplicaStats::evictions). The harness uses it to reincarnate the slot.
  /// Runs from an executor callback; it may destroy this server.
  void set_on_evicted(std::function<void()> fn) { on_evicted_ = std::move(fn); }

 private:
  // ---- message handlers (via the QoS / replication / primary groups) ----
  void on_qos_deliver(net::NodeId from, const net::MessagePtr& msg);
  void on_replication_deliver(net::NodeId from, const net::MessagePtr& msg);
  void on_primary_view(const gcs::View& view);
  void on_replication_view(const gcs::View& view);
  void on_qos_view(const gcs::View& view);

  void handle_update_request(net::NodeId from, const UpdateRequest& request);
  void handle_read_request(net::NodeId from,
                           const std::shared_ptr<const ReadRequest>& request);
  void handle_gsn_assign(const GsnAssign& assign);
  void handle_lazy_update(const LazyUpdate& lazy);

  // ---- recovery / state transfer ----
  void begin_recovery();
  void finish_recovery();
  void send_state_request();
  std::optional<net::NodeId> choose_transfer_target() const;
  void handle_state_request(net::NodeId from);
  void handle_state_snapshot(const StateSnapshot& snap);
  void check_commit_stall();
  void on_member_eviction();

  // ---- sequencer ----
  void sequence_update(const UpdateRequest& request);
  void sequence_read(const ReadRequest& request);
  void maybe_activate_sequencer();
  void publish_group_info();

  // ---- commit pipeline (primaries) ----
  void try_enqueue_commits();
  void advance_csn();

  // ---- read pipeline ----
  struct PendingRead {
    std::shared_ptr<const ReadRequest> request;
    net::NodeId client;
    sim::TimePoint arrival;
    std::optional<core::Gsn> gsn;
    sim::TimePoint gsn_at = sim::kEpoch;
    bool deferred = false;  // waited for a lazy update
  };
  void try_ready_read(const RequestId& id);
  void recheck_waiting_reads();

  // ---- service queue (single server, FIFO) ----
  struct Job {
    bool is_update;
    RequestId id;
    net::MessagePtr op;
    net::NodeId client;       // reply destination (updates and reads)
    sim::TimePoint arrival;   // for t_q accounting
    sim::Duration tb = sim::Duration::zero();  // lazy wait (deferred reads)
    bool deferred = false;
    core::Gsn gsn = 0;  // GSN context of the request
  };
  void enqueue_job(Job job);
  void maybe_start_service();
  void complete_job(const Job& job, sim::Duration service_time,
                    sim::TimePoint service_start);

  void send_reply(const std::shared_ptr<const Reply>& reply, net::NodeId client);
  void publish_perf(std::optional<sim::Duration> ts,
                    std::optional<sim::Duration> tq,
                    std::optional<sim::Duration> tb, bool deferred);
  std::optional<LazyInfo> build_lazy_info();

  // ---- lazy publisher ----
  void propagate_lazy_update();
  void update_roles();

  // ---- bounded caches ----
  void remember_committed(const RequestId& id);
  void cache_reply(const RequestId& id, std::shared_ptr<const Reply> reply);

  // ---- observability ----
  void span(obs::SpanKind kind, const RequestId& id, net::NodeId peer,
            std::uint64_t value = 0,
            sim::Duration duration = sim::Duration::zero());

  runtime::Executor& exec_;
  gcs::Endpoint& endpoint_;
  ServiceGroups groups_;
  bool is_primary_;
  std::unique_ptr<ReplicatedObject> object_;
  ReplicaConfig config_;
  sim::Rng rng_;

  gcs::Member* primary_member_ = nullptr;      // null for secondaries
  gcs::Member* replication_member_ = nullptr;
  gcs::Member* qos_member_ = nullptr;

  bool started_ = false;
  bool crashed_ = false;
  std::function<void()> on_evicted_;
  /// Liveness token captured (weakly) by the members' deferred eviction
  /// callbacks — a restart may destroy this server while one is queued.
  std::shared_ptr<const bool> alive_ = std::make_shared<bool>(true);

  // Roles (derived from the primary-group view).
  bool is_sequencer_ = false;
  bool is_lazy_publisher_ = false;
  /// Sequencing stays inactive after a takeover until the replication
  /// group's view has excluded the previous sequencer — guarantees the old
  /// sequencer's last GSN broadcasts are flushed before new GSNs are
  /// assigned (no GSN reuse).
  std::optional<net::NodeId> sequencer_barrier_;
  net::NodeId last_primary_leader_;  // previous primary-group leader
  std::uint64_t group_info_epoch_ = 0;
  /// Newest role map seen on the QoS group; used to pick a state-transfer
  /// responder when rejoining.
  std::shared_ptr<const GroupInfo> latest_roles_;

  // Recovery state (transfer barrier).
  bool recovering_ = false;
  bool recovery_decided_ = false;  // first replication view classifies us
  sim::EventHandle recovery_retry_;
  sim::TimePoint recovery_started_at_ = sim::kEpoch;
  sim::TimePoint recovered_at_ = sim::kEpoch;
  sim::TimePoint first_read_request_at_ = sim::kEpoch;
  std::unique_ptr<runtime::PeriodicTask> stall_task_;
  core::Gsn last_stall_head_ = 0;

  // Sequential-consistency protocol state (Section 4.1).
  core::Gsn my_gsn_ = 0;
  core::Csn my_csn_ = 0;

  // Sequencer state.
  std::unordered_map<RequestId, core::Gsn> assigned_;  // dedup of retries
  std::deque<RequestId> assigned_order_;
  std::deque<std::pair<net::NodeId, std::shared_ptr<const net::Message>>>
      barrier_queue_;  // requests buffered while sequencing is inactive

  // Update commit pipeline.
  std::unordered_map<RequestId, std::shared_ptr<const UpdateRequest>>
      update_payload_;                              // awaiting GSN
  std::unordered_map<RequestId, net::NodeId> update_client_;
  std::map<core::Gsn, RequestId> update_gsn_;       // assigned, awaiting payload
  std::unordered_map<RequestId, core::Gsn> gsn_of_update_;
  core::Gsn next_enqueue_gsn_ = 0;  // last update GSN handed to the queue
  std::set<RequestId> committed_;   // dedup (bounded via committed_order_)
  std::deque<RequestId> committed_order_;

  // Read pipeline.
  std::unordered_map<RequestId, core::Gsn> gsn_of_read_;
  std::deque<RequestId> gsn_of_read_order_;
  std::unordered_map<RequestId, PendingRead> pending_reads_;
  std::set<RequestId> waiting_reads_;  // staleness not yet satisfied

  // Reply cache for client retries.
  std::unordered_map<RequestId, std::shared_ptr<const Reply>> reply_cache_;
  std::deque<RequestId> reply_cache_order_;

  // Service queue.
  std::deque<Job> queue_;
  bool busy_ = false;
  /// In-flight service completion; cancelled on crash so a crashed (and
  /// possibly soon-destroyed) replica never completes a job posthumously.
  sim::EventHandle service_event_;

  // Lazy publisher bookkeeping.
  std::unique_ptr<runtime::PeriodicTask> lazy_task_;
  std::unique_ptr<runtime::PeriodicTask> perf_task_;
  std::uint64_t lazy_seq_ = 0;
  std::uint32_t updates_since_publish_ = 0;
  sim::TimePoint last_perf_publish_ = sim::kEpoch;
  std::uint32_t updates_since_lazy_ = 0;
  sim::TimePoint last_lazy_update_ = sim::kEpoch;

  /// Per-replica view (the `stats()` accessor); increments are mirrored
  /// into the registry-wide "repl.*" aggregates.
  ReplicaStats stats_;
  obs::Observability& obs_;
  struct Instruments {
    explicit Instruments(obs::MetricsRegistry& reg);
    obs::Counter& updates_committed;
    obs::Counter& reads_served;
    obs::Counter& deferred_reads;
    obs::Counter& gsn_assigned;
    obs::Counter& lazy_updates_published;
    obs::Counter& lazy_updates_installed;
    obs::Counter& duplicate_requests;
    obs::Counter& gsn_conflicts;
    obs::Counter& state_transfers_requested;
    obs::Counter& state_snapshots_served;
    obs::Counter& state_snapshots_installed;
    obs::Counter& recoveries_completed;
    obs::Counter& evictions;
    obs::Histogram& service_ms;
    obs::Histogram& queueing_ms;
    obs::Histogram& lazy_wait_ms;
  };
  Instruments metrics_;
};

}  // namespace aqueduct::replication
