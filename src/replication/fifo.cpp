#include "replication/fifo.hpp"

#include <utility>

#include "sim/check.hpp"

namespace aqueduct::replication {

FifoReplicaServer::FifoReplicaServer(runtime::Executor& exec,
                                     gcs::Endpoint& endpoint,
                                     ServiceGroups groups, bool is_primary,
                                     std::unique_ptr<ReplicatedObject> object,
                                     FifoReplicaConfig config)
    : exec_(exec),
      endpoint_(endpoint),
      groups_(groups),
      is_primary_(is_primary),
      object_(std::move(object)),
      config_(std::move(config)),
      rng_(exec.rng().split()) {
  AQUEDUCT_CHECK(object_ != nullptr);
  AQUEDUCT_CHECK(config_.service_time != nullptr);
}

FifoReplicaServer::~FifoReplicaServer() = default;

void FifoReplicaServer::start() {
  AQUEDUCT_CHECK(!started_ && !crashed_);
  started_ = true;
  qos_member_ = &endpoint_.member(groups_.qos);
  qos_member_->set_on_deliver(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_qos_deliver(from, msg);
      });
  qos_member_->set_on_view([this](const gcs::View&) {
    // New client (or replica) in the QoS group: the leader re-publishes
    // the role map.
    if (primary_member_ != nullptr && primary_member_->joined() &&
        primary_member_->is_leader()) {
      publish_group_info();
    }
  });
  replication_member_ = &endpoint_.member(groups_.replication);
  replication_member_->set_on_deliver(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_replication_deliver(from, msg);
      });
  replication_member_->set_on_view([this](const gcs::View&) {
    if (primary_member_ != nullptr && primary_member_->joined() &&
        primary_member_->is_leader()) {
      publish_group_info();
    }
    if (is_lazy_publisher_) propagate_lazy_update();
  });
  if (is_primary_) {
    primary_member_ = &endpoint_.member(groups_.primary);
    primary_member_->set_on_view(
        [this](const gcs::View& v) { on_primary_view(v); });
  }
  qos_member_->join();
  replication_member_->join();
  if (primary_member_ != nullptr) primary_member_->join();
}

void FifoReplicaServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  lazy_task_.reset();
  endpoint_.crash();
}

std::uint64_t FifoReplicaServer::horizon_of(net::NodeId client) const {
  auto it = horizons_.find(client);
  return it == horizons_.end() ? 0 : it->second;
}

void FifoReplicaServer::on_primary_view(const gcs::View& view) {
  if (crashed_ || view.empty()) return;
  const net::NodeId publisher =
      view.size() >= 2 ? view.members.back() : view.leader();
  const bool was_publisher = is_lazy_publisher_;
  is_lazy_publisher_ = (publisher == id());
  if (is_lazy_publisher_ && !was_publisher) {
    lazy_task_ = std::make_unique<runtime::PeriodicTask>(
        exec_, config_.lazy_update_interval, [this] { propagate_lazy_update(); });
    lazy_task_->start();
  } else if (!is_lazy_publisher_ && was_publisher) {
    lazy_task_.reset();
  }
  if (primary_member_->is_leader()) publish_group_info();
}

void FifoReplicaServer::publish_group_info() {
  if (qos_member_ == nullptr || !qos_member_->joined()) return;
  if (primary_member_ == nullptr || !primary_member_->joined()) return;
  if (replication_member_ == nullptr || !replication_member_->joined()) return;
  auto info = std::make_shared<FifoGroupInfo>();
  info->epoch = ++group_info_epoch_;
  const gcs::View& primary_view = primary_member_->view();
  const gcs::View& replication_view = replication_member_->view();
  info->primaries = primary_view.members;
  for (const net::NodeId m : replication_view.members) {
    if (!primary_view.contains(m)) info->secondaries.push_back(m);
  }
  info->lazy_publisher = primary_view.size() >= 2 ? primary_view.members.back()
                                                  : primary_view.leader();
  qos_member_->multicast(info);
}

void FifoReplicaServer::on_qos_deliver(net::NodeId /*from*/,
                                       const net::MessagePtr& msg) {
  if (crashed_) return;
  if (auto update = net::message_cast<FifoUpdateRequest>(msg)) {
    handle_update(update);
  } else if (auto read = net::message_cast<FifoReadRequest>(msg)) {
    handle_read(read);
  } else if (auto info = net::message_cast<FifoGroupInfo>(msg)) {
    group_info_epoch_ = std::max(group_info_epoch_, info->epoch);
  }
}

void FifoReplicaServer::on_replication_deliver(net::NodeId /*from*/,
                                               const net::MessagePtr& msg) {
  if (crashed_) return;
  if (auto lazy = net::message_cast<FifoLazyUpdate>(msg)) handle_lazy(*lazy);
}

void FifoReplicaServer::handle_update(
    const std::shared_ptr<const FifoUpdateRequest>& request) {
  if (!is_primary_) return;
  const RequestId id = request->id;
  if (id.seq <= horizon_of(id.client) || inflight_updates_.contains(id)) {
    ++stats_.duplicate_requests;
    if (auto it = reply_cache_.find(id); it != reply_cache_.end()) {
      reply_to(id, it->second);
    }
    return;
  }
  inflight_updates_.emplace(id, request);
  Job job;
  job.is_update = true;
  job.id = id;
  job.op = request->op;
  job.arrival = exec_.now();
  enqueue(std::move(job));
}

void FifoReplicaServer::handle_read(
    const std::shared_ptr<const FifoReadRequest>& request) {
  const RequestId id = request->id;
  if (auto it = reply_cache_.find(id); it != reply_cache_.end()) {
    ++stats_.duplicate_requests;
    reply_to(id, it->second);
    return;
  }
  if (pending_reads_.contains(id)) {
    ++stats_.duplicate_requests;
    return;
  }
  PendingRead pending;
  pending.request = request;
  pending.arrival = exec_.now();
  pending_reads_.emplace(id, std::move(pending));
  try_ready_read(id);
}

void FifoReplicaServer::try_ready_read(const RequestId& id) {
  auto it = pending_reads_.find(id);
  if (it == pending_reads_.end()) return;
  PendingRead& pending = it->second;
  if (horizon_of(id.client) < pending.request->horizon) {
    // Read-your-writes not satisfied yet: primaries will see the update
    // arrive shortly; secondaries wait for the next lazy propagation.
    if (!is_primary_) pending.deferred = true;
    return;
  }
  Job job;
  job.is_update = false;
  job.id = id;
  job.op = pending.request->op;
  job.arrival = pending.arrival;
  job.deferred = pending.deferred;
  job.tb = pending.deferred ? exec_.now() - pending.arrival : sim::Duration::zero();
  pending_reads_.erase(it);
  enqueue(std::move(job));
}

void FifoReplicaServer::recheck_waiting_reads() {
  std::vector<RequestId> ids;
  ids.reserve(pending_reads_.size());
  for (const auto& [id, pending] : pending_reads_) ids.push_back(id);
  for (const RequestId& id : ids) try_ready_read(id);
}

void FifoReplicaServer::handle_lazy(const FifoLazyUpdate& lazy) {
  if (is_primary_) return;
  // Install only if the snapshot moves at least one horizon forward.
  bool advances = horizons_.empty() && !lazy.horizons.empty();
  for (const auto& [client, horizon] : lazy.horizons) {
    if (horizon > horizon_of(client)) {
      advances = true;
      break;
    }
  }
  if (!advances) return;
  object_->install_snapshot(lazy.snapshot);
  for (const auto& [client, horizon] : lazy.horizons) {
    auto& mine = horizons_[client];
    mine = std::max(mine, horizon);
  }
  ++stats_.lazy_updates_installed;
  recheck_waiting_reads();
}

void FifoReplicaServer::enqueue(Job job) {
  queue_.push_back(std::move(job));
  maybe_start_service();
}

void FifoReplicaServer::maybe_start_service() {
  if (busy_ || queue_.empty() || crashed_) return;
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  const sim::Duration service_time = config_.service_time->sample(rng_);
  const sim::TimePoint start = exec_.now();
  exec_.after(service_time, [this, job = std::move(job), service_time, start]() mutable {
    complete(job, service_time, start);
  });
}

void FifoReplicaServer::complete(const Job& job, sim::Duration service_time,
                                 sim::TimePoint service_start) {
  if (crashed_) return;
  auto reply = std::make_shared<FifoReply>();
  reply->id = job.id;
  reply->replica = id();
  reply->deferred = job.deferred;
  const sim::Duration tq = (service_start - job.arrival) - job.tb;
  reply->t1 = service_time + tq + job.tb;
  if (job.is_update) {
    reply->is_update = true;
    reply->result = object_->apply_update(job.op);
    auto& horizon = horizons_[job.id.client];
    horizon = std::max(horizon, job.id.seq);
    inflight_updates_.erase(job.id);
    ++stats_.updates_applied;
    recheck_waiting_reads();
  } else {
    reply->result = object_->apply_read(job.op);
    ++stats_.reads_served;
    if (job.deferred) ++stats_.deferred_reads;
    publish_perf(service_time, tq, job.tb, job.deferred);
  }
  reply_cache_[job.id] = reply;
  reply_cache_order_.push_back(job.id);
  if (reply_cache_order_.size() > config_.cache_limit) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
  reply_to(job.id, reply);
  busy_ = false;
  maybe_start_service();
}

void FifoReplicaServer::reply_to(const RequestId& id,
                                 std::shared_ptr<const FifoReply> reply) {
  if (qos_member_ == nullptr || !qos_member_->joined()) return;
  if (!qos_member_->view().contains(id.client)) return;
  qos_member_->send_to(id.client, std::move(reply));
}

void FifoReplicaServer::publish_perf(sim::Duration ts, sim::Duration tq,
                                     sim::Duration tb, bool deferred) {
  if (qos_member_ == nullptr || !qos_member_->joined()) return;
  auto perf = std::make_shared<PerfPublication>();
  perf->replica = id();
  perf->has_sample = true;
  perf->ts = ts;
  perf->tq = tq;
  perf->tb = tb;
  perf->deferred = deferred;
  qos_member_->multicast(perf);
}

void FifoReplicaServer::propagate_lazy_update() {
  if (crashed_ || replication_member_ == nullptr ||
      !replication_member_->joined()) {
    return;
  }
  auto lazy = std::make_shared<FifoLazyUpdate>();
  lazy->snapshot = object_->snapshot();
  lazy->horizons = horizons_;
  lazy->lazy_seq = ++lazy_seq_;
  replication_member_->multicast(lazy);
  ++stats_.lazy_updates_published;
}

}  // namespace aqueduct::replication
