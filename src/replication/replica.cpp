#include "replication/replica.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/check.hpp"

namespace aqueduct::replication {

ReplicaServer::Instruments::Instruments(obs::MetricsRegistry& reg)
    : updates_committed(reg.counter("repl.updates_committed")),
      reads_served(reg.counter("repl.reads_served")),
      deferred_reads(reg.counter("repl.deferred_reads")),
      gsn_assigned(reg.counter("repl.gsn_assigned")),
      lazy_updates_published(reg.counter("repl.lazy_updates_published")),
      lazy_updates_installed(reg.counter("repl.lazy_updates_installed")),
      duplicate_requests(reg.counter("repl.duplicate_requests")),
      gsn_conflicts(reg.counter("repl.gsn_conflicts")),
      state_transfers_requested(reg.counter("repl.state_transfers_requested")),
      state_snapshots_served(reg.counter("repl.state_snapshots_served")),
      state_snapshots_installed(reg.counter("repl.state_snapshots_installed")),
      recoveries_completed(reg.counter("repl.recoveries_completed")),
      evictions(reg.counter("repl.evictions")),
      service_ms(reg.histogram("repl.service_ms")),
      queueing_ms(reg.histogram("repl.queueing_ms")),
      lazy_wait_ms(reg.histogram("repl.lazy_wait_ms")) {}

ReplicaServer::ReplicaServer(runtime::Executor& exec, gcs::Endpoint& endpoint,
                             ServiceGroups groups, bool is_primary,
                             std::unique_ptr<ReplicatedObject> object,
                             ReplicaConfig config)
    : exec_(exec),
      endpoint_(endpoint),
      groups_(groups),
      is_primary_(is_primary),
      object_(std::move(object)),
      config_(std::move(config)),
      rng_(exec.rng().split()),
      obs_(endpoint.observability()),
      metrics_(obs_.metrics) {
  AQUEDUCT_CHECK(object_ != nullptr);
  AQUEDUCT_CHECK_MSG(config_.service_time != nullptr,
                     "ReplicaConfig.service_time must be set");
}

ReplicaServer::~ReplicaServer() {
  exec_.cancel(recovery_retry_);
  exec_.cancel(service_event_);
}

void ReplicaServer::start() {
  AQUEDUCT_CHECK(!started_ && !crashed_);
  started_ = true;

  qos_member_ = &endpoint_.member(groups_.qos);
  qos_member_->set_on_deliver(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_qos_deliver(from, msg);
      });
  qos_member_->set_on_view([this](const gcs::View& v) { on_qos_view(v); });

  replication_member_ = &endpoint_.member(groups_.replication);
  replication_member_->set_on_deliver(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_replication_deliver(from, msg);
      });
  replication_member_->set_on_view(
      [this](const gcs::View& v) { on_replication_view(v); });

  if (is_primary_) {
    primary_member_ = &endpoint_.member(groups_.primary);
    primary_member_->set_on_view(
        [this](const gcs::View& v) { on_primary_view(v); });
    // No application traffic flows on the primary group itself; it exists
    // to define primary membership and elect the sequencer.
  }

  if (is_primary_) {
    stall_task_ = std::make_unique<runtime::PeriodicTask>(
        exec_, config_.commit_stall_check, [this] { check_commit_stall(); });
    stall_task_->start();
  }

  // Being ejected from any service group while still running (the failure
  // detector mistook a gray-failed process for dead) is fatal: the member
  // has stopped, so this replica would otherwise run on forever outside the
  // commit stream. Treat it as a crash; the harness reincarnates the slot.
  const auto evicted = [this, weak = std::weak_ptr<const bool>(alive_)] {
    if (weak.expired()) return;
    on_member_eviction();
  };
  qos_member_->set_on_eviction(evicted);
  replication_member_->set_on_eviction(evicted);
  if (primary_member_ != nullptr) primary_member_->set_on_eviction(evicted);

  qos_member_->join();
  replication_member_->join();
  if (primary_member_ != nullptr) primary_member_->join();
}

void ReplicaServer::on_member_eviction() {
  if (crashed_) return;
  ++stats_.evictions;
  metrics_.evictions.inc();
  crash();
  if (on_evicted_) on_evicted_();  // may destroy this server — return at once
}

void ReplicaServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  lazy_task_.reset();
  perf_task_.reset();
  stall_task_.reset();
  exec_.cancel(recovery_retry_);
  exec_.cancel(service_event_);
  endpoint_.crash();
}

void ReplicaServer::set_lazy_update_interval(sim::Duration interval) {
  AQUEDUCT_CHECK(interval > sim::Duration::zero());
  config_.lazy_update_interval = interval;
  if (lazy_task_ && lazy_task_->running()) {
    lazy_task_ = std::make_unique<runtime::PeriodicTask>(
        exec_, config_.lazy_update_interval, [this] { propagate_lazy_update(); });
    lazy_task_->start();
  }
}

// ---------------------------------------------------------------------------
// View handling and roles
// ---------------------------------------------------------------------------

void ReplicaServer::on_primary_view(const gcs::View& view) {
  if (crashed_ || view.empty()) return;

  const net::NodeId new_leader = view.leader();
  const bool becoming_sequencer = (new_leader == id()) && !is_sequencer_;

  is_sequencer_ = (new_leader == id());
  const net::NodeId lazy_publisher =
      view.size() >= 2 ? view.members.back() : view.leader();
  const bool was_publisher = is_lazy_publisher_;
  is_lazy_publisher_ = (lazy_publisher == id());

  if (becoming_sequencer) {
    // Hold new GSN assignments until the replication group has flushed the
    // previous sequencer out, so its in-flight GSN broadcasts are resolved
    // first and no GSN is reused for a different request.
    if (last_primary_leader_.valid() && last_primary_leader_ != id() &&
        replication_member_ != nullptr && replication_member_->joined() &&
        replication_member_->view().contains(last_primary_leader_)) {
      sequencer_barrier_ = last_primary_leader_;
    } else {
      sequencer_barrier_.reset();
    }
    // Resume sequencing from the highest GSN this replica has observed —
    // virtual synchrony guarantees all survivors agree on the delivered
    // GSN broadcasts of the crashed sequencer.
  }

  if (is_lazy_publisher_ && !was_publisher) {
    last_lazy_update_ = exec_.now();
    last_perf_publish_ = exec_.now();
    updates_since_lazy_ = 0;
    updates_since_publish_ = 0;
    lazy_task_ = std::make_unique<runtime::PeriodicTask>(
        exec_, config_.lazy_update_interval, [this] { propagate_lazy_update(); });
    lazy_task_->start();
    perf_task_ = std::make_unique<runtime::PeriodicTask>(
        exec_, config_.perf_publish_period,
        [this] { publish_perf(std::nullopt, std::nullopt, std::nullopt, false); });
    perf_task_->start();
  } else if (!is_lazy_publisher_ && was_publisher) {
    lazy_task_.reset();
    perf_task_.reset();
  }

  last_primary_leader_ = new_leader;
  maybe_activate_sequencer();
  if (is_sequencer_) publish_group_info();
}

void ReplicaServer::on_replication_view(const gcs::View& view) {
  if (crashed_ || view.empty()) return;
  if (!recovery_decided_) {
    // First view classifies this replica: the genesis member bootstraps a
    // singleton view and starts from empty state; anyone who lands in a
    // view with existing members is (re)joining a running service and must
    // synchronize before committing (the transfer barrier).
    recovery_decided_ = true;
    if (view.size() > 1) begin_recovery();
  }
  maybe_activate_sequencer();
  if (is_sequencer_) publish_group_info();
  if (is_lazy_publisher_) {
    // Bring freshly joined secondaries up to date without waiting a full
    // lazy interval.
    propagate_lazy_update();
  }
}

void ReplicaServer::on_qos_view(const gcs::View& view) {
  if (crashed_ || view.empty()) return;
  // A new client joined (or one left): re-publish the role map so it can
  // start issuing requests.
  if (is_sequencer_) publish_group_info();
}

void ReplicaServer::maybe_activate_sequencer() {
  // A recovering sequencer must not assign GSNs: its my_gsn_ may lag the
  // cluster and reassigning a used GSN would violate safety. Requests
  // buffer in barrier_queue_ until the snapshot installs.
  if (!is_sequencer_ || recovering_) return;
  if (sequencer_barrier_) {
    if (replication_member_ == nullptr || !replication_member_->joined()) return;
    if (replication_member_->view().contains(*sequencer_barrier_)) return;
    sequencer_barrier_.reset();
  }
  // Sequence the requests that arrived during the barrier, in order.
  auto queued = std::move(barrier_queue_);
  barrier_queue_.clear();
  for (auto& [from, msg] : queued) {
    if (auto update = net::message_cast<UpdateRequest>(msg)) {
      sequence_update(*update);
    } else if (auto read = net::message_cast<ReadRequest>(msg)) {
      sequence_read(*read);
    }
  }
}

void ReplicaServer::publish_group_info() {
  if (!is_sequencer_ || qos_member_ == nullptr || !qos_member_->joined()) return;
  if (primary_member_ == nullptr || !primary_member_->joined()) return;
  if (replication_member_ == nullptr || !replication_member_->joined()) return;

  auto info = std::make_shared<GroupInfo>();
  info->epoch = ++group_info_epoch_;
  info->sequencer = id();
  const gcs::View& primary_view = primary_member_->view();
  const gcs::View& replication_view = replication_member_->view();
  for (const net::NodeId m : primary_view.members) {
    if (m != id()) info->primaries.push_back(m);
  }
  for (const net::NodeId m : replication_view.members) {
    if (!primary_view.contains(m)) info->secondaries.push_back(m);
  }
  info->lazy_publisher = primary_view.size() >= 2 ? primary_view.members.back()
                                                  : primary_view.leader();
  qos_member_->multicast(info);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void ReplicaServer::on_qos_deliver(net::NodeId from, const net::MessagePtr& msg) {
  if (crashed_) return;
  if (auto update = net::message_cast<UpdateRequest>(msg)) {
    handle_update_request(from, *update);
  } else if (auto read = net::message_cast<ReadRequest>(msg)) {
    handle_read_request(from, read);
  } else if (auto info = net::message_cast<GroupInfo>(msg)) {
    // Track the highest role-map epoch ever published so that a replica
    // taking over as sequencer continues the epoch sequence — clients
    // ignore GroupInfo with a non-increasing epoch.
    if (info->epoch >= group_info_epoch_) latest_roles_ = info;
    group_info_epoch_ = std::max(group_info_epoch_, info->epoch);
  }
  // PerfPublication / Reply multicasts are for clients; ignore.
}

void ReplicaServer::on_replication_deliver(net::NodeId from,
                                           const net::MessagePtr& msg) {
  if (crashed_) return;
  if (auto assign = net::message_cast<GsnAssign>(msg)) {
    handle_gsn_assign(*assign);
  } else if (auto lazy = net::message_cast<LazyUpdate>(msg)) {
    handle_lazy_update(*lazy);
  } else if (net::message_cast<StateRequest>(msg)) {
    handle_state_request(from);
  } else if (auto snap = net::message_cast<StateSnapshot>(msg)) {
    handle_state_snapshot(*snap);
  }
}

// ---------------------------------------------------------------------------
// Updates (Section 4.1.1)
// ---------------------------------------------------------------------------

void ReplicaServer::handle_update_request(net::NodeId /*from*/,
                                          const UpdateRequest& request) {
  if (!is_primary_) return;  // secondaries never service updates

  const RequestId id = request.id;
  // The payload stays in update_payload_ until the commit completes, so a
  // retried payload is recognized as a duplicate whether the update is
  // still waiting for its GSN, queued, or already committed.
  const bool duplicate = committed_.contains(id) || update_payload_.contains(id);
  span(obs::SpanKind::kDeliver, id, id.client, duplicate ? 1 : 0);
  if (duplicate) {
    ++stats_.duplicate_requests;
    metrics_.duplicate_requests.inc();
    if (auto it = reply_cache_.find(id); it != reply_cache_.end()) {
      send_reply(it->second, id.client);
    }
  } else {
    ++updates_since_publish_;
    ++updates_since_lazy_;
    auto copy = std::make_shared<UpdateRequest>(request);
    update_payload_.emplace(id, std::move(copy));
  }

  if (is_sequencer_) sequence_update(request);
  if (!duplicate) try_enqueue_commits();
}

void ReplicaServer::sequence_update(const UpdateRequest& request) {
  if (sequencer_barrier_ || recovering_) {
    barrier_queue_.emplace_back(request.id.client,
                                std::make_shared<UpdateRequest>(request));
    return;
  }
  auto assign = std::make_shared<GsnAssign>();
  assign->id = request.id;
  assign->is_update = true;
  if (auto it = assigned_.find(request.id); it != assigned_.end()) {
    assign->gsn = it->second;  // retry: re-broadcast the original assignment
  } else {
    assign->gsn = ++my_gsn_;
    assigned_.emplace(request.id, assign->gsn);
    assigned_order_.push_back(request.id);
    if (assigned_order_.size() > config_.cache_limit) {
      assigned_.erase(assigned_order_.front());
      assigned_order_.pop_front();
    }
    ++stats_.gsn_assigned;
    metrics_.gsn_assigned.inc();
  }
  span(obs::SpanKind::kGsnAssign, request.id, request.id.client, assign->gsn);
  replication_member_->multicast(assign);
}

void ReplicaServer::handle_gsn_assign(const GsnAssign& assign) {
  my_gsn_ = std::max(my_gsn_, assign.gsn);

  if (!assign.is_update) {
    // Read GSN broadcast: remember it for the (possibly not yet received)
    // read request, and wake any read already waiting for it.
    if (!gsn_of_read_.contains(assign.id)) {
      gsn_of_read_.emplace(assign.id, assign.gsn);
      gsn_of_read_order_.push_back(assign.id);
      if (gsn_of_read_order_.size() > config_.cache_limit) {
        gsn_of_read_.erase(gsn_of_read_order_.front());
        gsn_of_read_order_.pop_front();
      }
    }
    if (auto it = pending_reads_.find(assign.id); it != pending_reads_.end()) {
      if (!it->second.gsn) {
        it->second.gsn = assign.gsn;
        it->second.gsn_at = exec_.now();
        try_ready_read(assign.id);
      }
    }
    return;
  }

  if (!is_primary_) return;  // secondaries track GSN only

  // Conflict safety net: a GSN must never be bound to two requests, and a
  // request must never receive two GSNs (the sequencer barrier prevents
  // both; the counter lets tests assert it).
  if (auto it = update_gsn_.find(assign.gsn);
      it != update_gsn_.end() && it->second != assign.id) {
    ++stats_.gsn_conflicts;
    metrics_.gsn_conflicts.inc();
    return;
  }
  if (auto it = gsn_of_update_.find(assign.id);
      it != gsn_of_update_.end() && it->second != assign.gsn) {
    ++stats_.gsn_conflicts;
    metrics_.gsn_conflicts.inc();
    return;
  }
  if (assign.gsn <= next_enqueue_gsn_) return;  // already consumed (retry)

  update_gsn_.emplace(assign.gsn, assign.id);
  gsn_of_update_.emplace(assign.id, assign.gsn);
  try_enqueue_commits();
}

void ReplicaServer::try_enqueue_commits() {
  // The transfer barrier: a recovering primary buffers assignments and
  // payloads but must not execute them — committing a mid-stream GSN onto
  // unsynchronized state would fork the committed prefix. The snapshot
  // install advances next_enqueue_gsn_ past everything it covers, so after
  // recovery each GSN is executed exactly once.
  if (!is_primary_ || recovering_) return;
  while (true) {
    auto it = update_gsn_.find(next_enqueue_gsn_ + 1);
    if (it == update_gsn_.end()) break;
    const RequestId rid = it->second;
    Job job;
    job.is_update = true;
    job.id = rid;
    job.gsn = it->first;
    job.client = rid.client;
    job.arrival = exec_.now();
    if (committed_.contains(rid)) {
      // Retried request that a failed-over sequencer re-assigned: consume
      // the GSN as a no-op so the commit sequence stays contiguous.
      job.op = nullptr;
    } else {
      auto payload = update_payload_.find(rid);
      if (payload == update_payload_.end()) break;  // wait for the payload
      job.op = payload->second->op;
      // The payload entry is kept (for retry dedup) until the commit
      // completes in complete_job().
    }
    update_gsn_.erase(it);
    next_enqueue_gsn_ = job.gsn;
    enqueue_job(std::move(job));
  }
}

// ---------------------------------------------------------------------------
// Reads (Section 4.1.2)
// ---------------------------------------------------------------------------

void ReplicaServer::handle_read_request(
    net::NodeId from, const std::shared_ptr<const ReadRequest>& request) {
  const RequestId id = request->id;
  span(obs::SpanKind::kDeliver, id, from);
  if (auto it = reply_cache_.find(id); it != reply_cache_.end()) {
    ++stats_.duplicate_requests;
    metrics_.duplicate_requests.inc();
    send_reply(it->second, id.client);
    return;
  }

  if (is_sequencer_) {
    // The sequencer only broadcasts the current GSN; it does not service
    // the read itself.
    sequence_read(*request);
    return;
  }

  // Selection instant: a read addressed to this (non-sequencer) replica
  // means some client's Algorithm 1 picked it — for a reborn replica this
  // marks re-admission (bench_recovery's time-to-first-selection).
  if (first_read_request_at_ == sim::kEpoch) first_read_request_at_ = exec_.now();

  if (pending_reads_.contains(id)) {
    ++stats_.duplicate_requests;
    metrics_.duplicate_requests.inc();
    return;
  }
  PendingRead pending;
  pending.request = request;
  pending.client = from;
  pending.arrival = exec_.now();
  if (auto it = gsn_of_read_.find(id); it != gsn_of_read_.end()) {
    pending.gsn = it->second;
    pending.gsn_at = exec_.now();
  }
  pending_reads_.emplace(id, std::move(pending));
  if (pending_reads_.at(id).gsn) try_ready_read(id);
}

void ReplicaServer::sequence_read(const ReadRequest& request) {
  if (sequencer_barrier_ || recovering_) {
    barrier_queue_.emplace_back(request.id.client,
                                std::make_shared<ReadRequest>(request));
    return;
  }
  auto assign = std::make_shared<GsnAssign>();
  assign->id = request.id;
  assign->is_update = false;
  if (auto it = assigned_.find(request.id); it != assigned_.end()) {
    assign->gsn = it->second;
  } else {
    assign->gsn = my_gsn_;  // current GSN, *not* advanced for reads
    assigned_.emplace(request.id, assign->gsn);
    assigned_order_.push_back(request.id);
    if (assigned_order_.size() > config_.cache_limit) {
      assigned_.erase(assigned_order_.front());
      assigned_order_.pop_front();
    }
  }
  replication_member_->multicast(assign);
}

void ReplicaServer::try_ready_read(const RequestId& id) {
  auto it = pending_reads_.find(id);
  if (it == pending_reads_.end()) return;
  PendingRead& pending = it->second;
  if (!pending.gsn) return;

  const core::Staleness staleness = core::staleness_of(*pending.gsn, my_csn_);
  if (staleness > pending.request->staleness_threshold) {
    // Too stale: a secondary defers until the next lazy update brings the
    // state within the threshold; a primary simply waits for its in-flight
    // commits (that wait is part of the queueing delay W).
    if (!is_primary_) pending.deferred = true;
    waiting_reads_.insert(id);
    return;
  }

  Job job;
  job.is_update = false;
  job.id = id;
  job.op = pending.request->op;
  job.client = pending.client;
  job.arrival = pending.arrival;
  job.deferred = pending.deferred;
  job.tb = pending.deferred ? exec_.now() - pending.gsn_at : sim::Duration::zero();
  job.gsn = *pending.gsn;
  waiting_reads_.erase(id);
  pending_reads_.erase(it);
  enqueue_job(std::move(job));
}

void ReplicaServer::recheck_waiting_reads() {
  const std::vector<RequestId> waiting(waiting_reads_.begin(), waiting_reads_.end());
  for (const RequestId& id : waiting) try_ready_read(id);
}

// ---------------------------------------------------------------------------
// Lazy update propagation (Section 3 / 5.4.1)
// ---------------------------------------------------------------------------

void ReplicaServer::propagate_lazy_update() {
  if (crashed_ || replication_member_ == nullptr || !replication_member_->joined()) {
    return;
  }
  auto lazy = std::make_shared<LazyUpdate>();
  lazy->csn = my_csn_;
  lazy->snapshot = object_->snapshot();
  lazy->lazy_seq = ++lazy_seq_;
  replication_member_->multicast(lazy);
  updates_since_lazy_ = 0;
  last_lazy_update_ = exec_.now();
  ++stats_.lazy_updates_published;
  metrics_.lazy_updates_published.inc();
  if (obs_.trace.active()) {
    // Lazy propagations are not tied to any client request; they trace
    // under the invalid TraceId so timelines still show them per node.
    obs::SpanEvent event;
    event.kind = obs::SpanKind::kLazyPublish;
    event.at = exec_.now();
    event.node = id();
    event.value = lazy_seq_;
    obs_.trace.span(event);
  }
  // Tell the clients immediately that a lazy update just happened, so
  // their <n_L, t_L> trackers re-synchronize.
  publish_perf(std::nullopt, std::nullopt, std::nullopt, false);
}

void ReplicaServer::handle_lazy_update(const LazyUpdate& lazy) {
  if (is_primary_) return;  // primaries are updated immediately
  // A rejoining secondary catches up from the first lazy propagation: any
  // LazyUpdate delivery (the publisher pushes one immediately on view
  // changes) re-synchronizes it, even if the CSN happens to match.
  if (recovering_) finish_recovery();
  if (lazy.csn <= my_csn_) return;
  object_->install_snapshot(lazy.snapshot);
  my_csn_ = lazy.csn;
  ++stats_.lazy_updates_installed;
  metrics_.lazy_updates_installed.inc();
  recheck_waiting_reads();
}

// ---------------------------------------------------------------------------
// Recovery / state transfer (rejoin after crash, or commit-stall repair)
// ---------------------------------------------------------------------------

void ReplicaServer::begin_recovery() {
  if (recovering_ || crashed_) return;
  recovering_ = true;
  recovery_started_at_ = exec_.now();
  last_stall_head_ = 0;
  // Secondaries synchronize passively from the next lazy propagation (the
  // publisher pushes one on every replication view change); only primaries
  // pull a snapshot, because they must also reconstruct the commit
  // position and dedup set.
  if (is_primary_) send_state_request();
}

void ReplicaServer::send_state_request() {
  if (!recovering_ || crashed_) return;
  exec_.cancel(recovery_retry_);
  recovery_retry_ = exec_.after(config_.state_transfer_retry,
                               [this] { send_state_request(); });
  const auto target = choose_transfer_target();
  if (!target) return;  // roles unknown yet; retry after the timer
  ++stats_.state_transfers_requested;
  metrics_.state_transfers_requested.inc();
  replication_member_->send_to(*target, std::make_shared<StateRequest>());
}

std::optional<net::NodeId> ReplicaServer::choose_transfer_target() const {
  if (replication_member_ == nullptr || !replication_member_->joined()) {
    return std::nullopt;
  }
  const gcs::View& view = replication_member_->view();
  std::vector<net::NodeId> candidates;
  if (latest_roles_) {
    // Prefer the lazy publisher (it snapshots anyway), then the sequencer,
    // then any other primary. The role map may be stale after a
    // simultaneous failure; the view filter plus the retry timer (the
    // sequencer republishes roles on every view change) converge on a live
    // responder.
    candidates.push_back(latest_roles_->lazy_publisher);
    candidates.push_back(latest_roles_->sequencer);
    candidates.insert(candidates.end(), latest_roles_->primaries.begin(),
                      latest_roles_->primaries.end());
  }
  for (const net::NodeId c : candidates) {
    if (c.valid() && c != id() && view.contains(c)) return c;
  }
  return std::nullopt;
}

void ReplicaServer::handle_state_request(net::NodeId from) {
  // Only a synchronized primary may serve a transfer; a recovering one
  // would hand out the very hole it is trying to fill.
  if (!is_primary_ || recovering_ || crashed_) return;
  if (replication_member_ == nullptr || !replication_member_->joined()) return;
  if (!replication_member_->view().contains(from)) return;
  auto snap = std::make_shared<StateSnapshot>();
  snap->csn = my_csn_;
  snap->gsn = my_gsn_;
  snap->snapshot = object_->snapshot();
  snap->committed.assign(committed_order_.begin(), committed_order_.end());
  ++stats_.state_snapshots_served;
  metrics_.state_snapshots_served.inc();
  replication_member_->send_to(from, snap);
}

void ReplicaServer::handle_state_snapshot(const StateSnapshot& snap) {
  if (!recovering_ || !is_primary_) return;  // late duplicate
  if (snap.csn > my_csn_) {
    object_->install_snapshot(snap.snapshot);
    my_csn_ = snap.csn;
    ++stats_.state_snapshots_installed;
    metrics_.state_snapshots_installed.inc();
  }
  my_gsn_ = std::max(my_gsn_, snap.gsn);
  // Transfer barrier bookkeeping: everything at or below the snapshot CSN
  // is already reflected in the installed state — consume those GSNs so
  // they are never executed again, and adopt the responder's dedup set so
  // re-broadcast assignments of old requests become no-op commits.
  next_enqueue_gsn_ = std::max(next_enqueue_gsn_, snap.csn);
  std::erase_if(update_gsn_,
                [&](const auto& kv) { return kv.first <= next_enqueue_gsn_; });
  for (const RequestId& rid : snap.committed) {
    if (committed_.contains(rid)) continue;
    remember_committed(rid);
    update_payload_.erase(rid);
    if (auto it = gsn_of_update_.find(rid);
        it != gsn_of_update_.end() && it->second <= next_enqueue_gsn_) {
      gsn_of_update_.erase(it);
    }
  }
  finish_recovery();
}

void ReplicaServer::finish_recovery() {
  if (!recovering_) return;
  recovering_ = false;
  recovered_at_ = exec_.now();
  exec_.cancel(recovery_retry_);
  ++stats_.recoveries_completed;
  metrics_.recoveries_completed.inc();
  // Drop the barrier: run everything that accumulated behind it.
  maybe_activate_sequencer();
  try_enqueue_commits();
  recheck_waiting_reads();
}

void ReplicaServer::check_commit_stall() {
  if (crashed_ || !is_primary_ || recovering_) {
    last_stall_head_ = 0;
    return;
  }
  const core::Gsn head = next_enqueue_gsn_ + 1;
  bool stalled = false;
  if (!update_gsn_.empty()) {
    const auto first = update_gsn_.begin();
    if (first->first > head) {
      // Assignment gap: GSNs below the first known assignment were
      // broadcast before this replica (re)joined and will never arrive.
      stalled = true;
    } else if (first->first == head && !committed_.contains(first->second) &&
               !update_payload_.contains(first->second)) {
      // Head assigned but its payload is missing (lost before the client
      // learned this replica exists, or the client gave up retrying).
      stalled = true;
    }
  }
  if (stalled && last_stall_head_ == head) {
    // Stuck on the same hole for a full check period: re-enter recovery
    // and jump past it via a snapshot from a synchronized primary.
    begin_recovery();
    return;
  }
  last_stall_head_ = stalled ? head : 0;
}

// ---------------------------------------------------------------------------
// Service queue (single FIFO server per replica)
// ---------------------------------------------------------------------------

void ReplicaServer::enqueue_job(Job job) {
  span(obs::SpanKind::kEnqueue, job.id, job.client, queue_.size());
  queue_.push_back(std::move(job));
  maybe_start_service();
}

void ReplicaServer::maybe_start_service() {
  if (busy_ || queue_.empty() || crashed_) return;
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  // The sequencer's bookkeeping and no-op commits are free; real request
  // processing takes a sampled service delay (the paper's simulated
  // background load).
  const bool free = (job.is_update && job.op == nullptr) || is_sequencer_;
  const sim::Duration service_time =
      free ? sim::Duration::zero() : config_.service_time->sample(rng_);
  const sim::TimePoint service_start = exec_.now();
  service_event_ =
      exec_.after(service_time, [this, job = std::move(job), service_time,
                                service_start]() mutable {
        complete_job(job, service_time, service_start);
      });
}

void ReplicaServer::complete_job(const Job& job, sim::Duration service_time,
                                 sim::TimePoint service_start) {
  if (crashed_) return;
  span(obs::SpanKind::kExecute, job.id, job.client, job.is_update ? 1 : 0,
       service_time);
  if (job.is_update) {
    if (job.op != nullptr) {
      net::MessagePtr result = object_->apply_update(job.op);
      ++my_csn_;
      ++stats_.updates_committed;
      metrics_.updates_committed.inc();
      remember_committed(job.id);
      update_payload_.erase(job.id);
      if (!is_sequencer_) {
        const sim::Duration tq = service_start - job.arrival;
        metrics_.service_ms.observe(sim::to_ms(service_time));
        metrics_.queueing_ms.observe(sim::to_ms(tq));
        auto reply = std::make_shared<Reply>();
        reply->id = job.id;
        reply->is_update = true;
        reply->result = std::move(result);
        reply->replica = id();
        reply->t1 = service_time + tq;
        reply->ts = service_time;
        reply->tq = tq;
        cache_reply(job.id, reply);
        send_reply(reply, job.client);
      }
    } else {
      ++my_csn_;  // no-op commit keeps the sequence contiguous
    }
    recheck_waiting_reads();
  } else {
    net::MessagePtr result = object_->apply_read(job.op);
    ++stats_.reads_served;
    metrics_.reads_served.inc();
    if (job.deferred) {
      ++stats_.deferred_reads;
      metrics_.deferred_reads.inc();
      metrics_.lazy_wait_ms.observe(sim::to_ms(job.tb));
    }
    const sim::Duration tq = (service_start - job.arrival) - job.tb;
    metrics_.service_ms.observe(sim::to_ms(service_time));
    metrics_.queueing_ms.observe(sim::to_ms(tq));
    auto reply = std::make_shared<Reply>();
    reply->id = job.id;
    reply->is_update = false;
    reply->result = std::move(result);
    reply->replica = id();
    reply->t1 = service_time + tq + job.tb;
    reply->ts = service_time;
    reply->tq = tq;
    reply->tb = job.tb;
    reply->deferred = job.deferred;
    reply->staleness = core::staleness_of(job.gsn, my_csn_);
    cache_reply(job.id, reply);
    send_reply(reply, job.client);
    publish_perf(service_time, tq, job.tb, job.deferred);
  }
  busy_ = false;
  maybe_start_service();
}

void ReplicaServer::send_reply(const std::shared_ptr<const Reply>& reply,
                               net::NodeId client) {
  if (qos_member_ == nullptr || !qos_member_->joined()) return;
  if (!qos_member_->view().contains(client)) return;  // client gone
  span(obs::SpanKind::kReply, reply->id, client, reply->deferred ? 1 : 0,
       reply->t1);
  qos_member_->send_to(client, reply);
}

void ReplicaServer::publish_perf(std::optional<sim::Duration> ts,
                                 std::optional<sim::Duration> tq,
                                 std::optional<sim::Duration> tb,
                                 bool deferred) {
  if (crashed_ || qos_member_ == nullptr || !qos_member_->joined()) return;
  auto perf = std::make_shared<PerfPublication>();
  perf->replica = id();
  if (ts) {
    perf->has_sample = true;
    perf->ts = *ts;
    perf->tq = tq.value_or(sim::Duration::zero());
    perf->tb = tb.value_or(sim::Duration::zero());
    perf->deferred = deferred;
  }
  if (is_lazy_publisher_) {
    perf->lazy = build_lazy_info();
    updates_since_publish_ = 0;
    last_perf_publish_ = exec_.now();
  }
  qos_member_->multicast(perf);
}

std::optional<LazyInfo> ReplicaServer::build_lazy_info() {
  LazyInfo info;
  info.n_u = updates_since_publish_;
  info.t_u = exec_.now() - last_perf_publish_;
  info.n_l = updates_since_lazy_;
  info.t_l = exec_.now() - last_lazy_update_;
  info.period = config_.lazy_update_interval;
  return info;
}

// ---------------------------------------------------------------------------
// Bounded caches
// ---------------------------------------------------------------------------

void ReplicaServer::remember_committed(const RequestId& id) {
  committed_.insert(id);
  committed_order_.push_back(id);
  if (committed_order_.size() > config_.cache_limit) {
    const RequestId& oldest = committed_order_.front();
    committed_.erase(oldest);
    gsn_of_update_.erase(oldest);
    committed_order_.pop_front();
  }
}

void ReplicaServer::cache_reply(const RequestId& id,
                                std::shared_ptr<const Reply> reply) {
  reply_cache_[id] = std::move(reply);
  reply_cache_order_.push_back(id);
  if (reply_cache_order_.size() > config_.cache_limit) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void ReplicaServer::span(obs::SpanKind kind, const RequestId& request,
                         net::NodeId peer, std::uint64_t value,
                         sim::Duration duration) {
  if (!obs_.trace.active()) return;
  obs::SpanEvent event;
  event.trace = trace_of(request);
  event.kind = kind;
  event.at = exec_.now();
  event.duration = duration;
  event.node = id();
  event.peer = peer;
  event.value = value;
  obs_.trace.span(event);
}

}  // namespace aqueduct::replication
