// Response-time distribution estimation (paper Section 5.2).
//
// For a replica that can answer immediately (a primary, or a secondary
// whose state satisfies the staleness threshold):
//     R_i = S_i + W_i + G_i                       (Eq. 5)
// For a deferred read (secondary waiting for the next lazy update):
//     R_i = S_i + W_i + G_i + U_i                 (Eq. 6)
// S (service time) and W (queueing delay, incl. waiting for the GSN) are
// estimated as pmfs from sliding windows of measurements; G (two-way
// gateway delay) uses only its most recent value, because it fluctuates
// far less than the other parameters; U (lazy wait) gets its own window.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "core/pmf.hpp"
#include "core/sliding_window.hpp"
#include "sim/time.hpp"

namespace aqueduct::core {

/// Per-replica performance history kept in a client's information
/// repository (paper Section 5.4).
///
/// Every mutation that can change the derived response-time distributions
/// (a window push or a gateway-delay update) advances version(), so the
/// Eq. 5/6 pmfs and their CDF-at-deadline can be memoized between
/// publication/reply events. last_reply_at is deliberately unversioned:
/// it only feeds the ert sort, never the distributions.
struct PerfHistory {
  explicit PerfHistory(std::size_t window_size)
      : service(window_size), queueing(window_size), lazy_wait(window_size) {}

  SlidingWindow<sim::Duration> service;    // t_s samples
  SlidingWindow<sim::Duration> queueing;   // t_q samples
  SlidingWindow<sim::Duration> lazy_wait;  // t_b samples (deferred reads)
  /// When this client last received a reply from the replica (for the
  /// elapsed-response-time sort in Algorithm 1). kEpoch if never.
  sim::TimePoint last_reply_at = sim::kEpoch;

  /// Records the most recent two-way gateway-to-gateway delay t_g for this
  /// client-replica pair (only the latest value is kept, Section 5.2).
  void set_gateway_delay(sim::Duration tg) {
    gateway_delay_ = tg;
    ++gateway_version_;
  }

  /// nullopt until the first reply.
  const std::optional<sim::Duration>& gateway_delay() const {
    return gateway_delay_;
  }

  /// Monotonically increasing across every distribution-relevant mutation.
  /// Each event (publication sample, gateway update) bumps exactly one of
  /// the summed counters, so equal versions imply identical distributions.
  std::uint64_t version() const {
    return service.version() + queueing.version() + lazy_wait.version() +
           gateway_version_;
  }

  bool has_samples() const { return !service.empty(); }

 private:
  std::optional<sim::Duration> gateway_delay_;
  std::uint64_t gateway_version_ = 0;
};

/// Integer-count convolution state for one replica's Eq. 5/6 pipeline.
///
/// Window pmfs are relative frequencies count/n, so every derived mass is an
/// integer count times one inverse: (S*W)[k] = C[k] / (nS*nW) where
/// C = cS (*) cW is a convolution of integer histograms, and likewise for
/// the deferred D = C (*) cU. ResponseState keeps cS/cW/cU and C (and D,
/// built lazily — primaries never ask for it) as integer arrays and exposes
/// two operations:
///
///   - rebuild(): recompute everything from the windows (one metered
///     convolution for C; one more for D on first deferred use);
///   - apply_publication(): fold one window push in as a delta — subtract
///     the evicted sample's cross terms, add the new one's — in
///     O(window + span) integer additions with no convolution at all.
///
/// Because the integer arithmetic is exact, an incrementally maintained
/// state is *identical* (not approximately equal) to a rebuilt one, and the
/// float pmfs materialized from it — mass[k] = count[k] * (1/n), the same
/// single multiply Pmf::from_samples uses — are bit-identical whichever
/// route produced the counts. That is what lets InfoRepository's memo apply
/// deltas while the uncached ResponseTimeModel rebuilds from scratch, with
/// the coherence tests still requiring bitwise-equal CDFs.
///
/// The latest gateway delay G and the deferred fallback wait are *not* part
/// of the state: they enter at materialization time as shifts, so a
/// gateway-only update never touches the integer arrays.
class ResponseState {
 public:
  ResponseState() = default;

  /// True once rebuild() has run with a non-empty service window.
  bool built() const { return built_; }

  /// Recomputes the window histograms and C from `history`. Counts one
  /// convolution when both the service and queueing windows are non-empty.
  /// The deferred product D is dropped and rebuilt on next demand.
  void rebuild(const PerfHistory& history, sim::Duration resolution);

  /// Applies one performance publication as a delta: `ts`/`tq` (and `tb`
  /// when the publication carried a deferred sample) are the pushed values,
  /// each paired with the value its window evicted (nullopt while the
  /// window was still filling). Requires built(); the caller must keep the
  /// pushes it forwards here in lockstep with the underlying PerfHistory.
  void apply_publication(sim::Duration ts,
                         const std::optional<sim::Duration>& evicted_ts,
                         sim::Duration tq,
                         const std::optional<sim::Duration>& evicted_tq,
                         const std::optional<sim::Duration>& tb,
                         const std::optional<sim::Duration>& evicted_tb);

  /// Materializes the Eq. 5 pmf: C scaled to probabilities, tail-truncated
  /// at `epsilon` (see Pmf::truncate_tail), shifted by the exact gateway
  /// delay. Empty when no service samples exist.
  Pmf immediate(const std::optional<sim::Duration>& gateway,
                double epsilon) const;

  /// Materializes the Eq. 6 pmf. With lazy-wait samples this is D scaled
  /// and truncated (building D first if needed — the one lazy convolution);
  /// otherwise `fallback` shifts the immediate pmf; otherwise empty.
  Pmf deferred(const std::optional<sim::Duration>& gateway,
               const std::optional<sim::Duration>& fallback,
               double epsilon) const;

 private:
  /// Sorted (bucket index, count) histogram of one sliding window.
  struct SparseCounts {
    std::vector<std::pair<std::int64_t, std::int64_t>> bins;
    std::int64_t n = 0;  // total samples

    void clear() { bins.clear(); n = 0; }
    void add(std::int64_t idx, std::int64_t delta);
  };

  /// Contiguous counts over [lo, lo + c.size()) bucket indices.
  struct DenseCounts {
    std::int64_t lo = 0;
    std::vector<std::int64_t> c;

    void clear() { lo = 0; c.clear(); }
    bool empty() const { return c.empty(); }
    void add(std::int64_t idx, std::int64_t delta);
  };

  void rebuild_c();
  void build_d() const;
  Pmf materialize(const DenseCounts& counts, double inv, std::int64_t shift_idx,
                  double epsilon) const;

  sim::Duration resolution_{1};
  bool built_ = false;
  SparseCounts s_, w_, u_;
  bool c_built_ = false;
  DenseCounts c_;  // cS (*) cW (only while both windows are non-empty)
  // D = C (*) cU, built on first deferred() and kept in sync by deltas.
  // Mutable because laziness is invisible to callers: deferred() is
  // logically const.
  mutable bool d_built_ = false;
  mutable DenseCounts d_;
};

/// Computes F^I_{R_i}(d) and F^D_{R_i}(d) from a PerfHistory.
///
/// `truncation_epsilon` bounds the materialized pmfs' support: upper-tail
/// buckets are dropped while the removed mass stays <= epsilon, so every
/// reported CDF is within epsilon *below* the exact value (conservative:
/// a truncated model never over-credits a replica with meeting a deadline).
/// 0 (the default) keeps the full support.
class ResponseTimeModel {
 public:
  explicit ResponseTimeModel(
      sim::Duration resolution = std::chrono::milliseconds(1),
      double truncation_epsilon = 0.0)
      : resolution_(resolution), epsilon_(truncation_epsilon) {}

  /// pmf of S + W + G (Eq. 5). Empty if the service window is empty.
  Pmf immediate_pmf(const PerfHistory& history) const;

  /// pmf of S + W + G + U (Eq. 6). If no lazy-wait samples exist yet,
  /// `fallback_lazy_wait` (when provided, typically half the lazy-update
  /// interval) substitutes for the U pmf; otherwise the result is empty.
  Pmf deferred_pmf(const PerfHistory& history,
                   std::optional<sim::Duration> fallback_lazy_wait = {}) const;

  /// Eq. 6 given an already-computed Eq. 5 pmf. Bit-identical to
  /// deferred_pmf() when `immediate` equals immediate_pmf(history). With no
  /// lazy-wait samples the fallback shifts `immediate` directly (zero
  /// convolutions); with samples the integer pipeline recomputes C and D.
  Pmf deferred_from_immediate(
      const Pmf& immediate, const PerfHistory& history,
      std::optional<sim::Duration> fallback_lazy_wait = {}) const;

  /// F^I_{R_i}(d) = P(S + W + G <= d). 0 when no history exists — an
  /// unknown replica is never credited with meeting a deadline.
  double immediate_cdf(const PerfHistory& history, sim::Duration deadline) const;

  /// F^D_{R_i}(d) = P(S + W + G + U <= d).
  double deferred_cdf(const PerfHistory& history, sim::Duration deadline,
                      std::optional<sim::Duration> fallback_lazy_wait = {}) const;

  sim::Duration resolution() const { return resolution_; }
  double truncation_epsilon() const { return epsilon_; }

 private:
  sim::Duration resolution_;
  double epsilon_ = 0.0;
};

}  // namespace aqueduct::core
