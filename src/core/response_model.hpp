// Response-time distribution estimation (paper Section 5.2).
//
// For a replica that can answer immediately (a primary, or a secondary
// whose state satisfies the staleness threshold):
//     R_i = S_i + W_i + G_i                       (Eq. 5)
// For a deferred read (secondary waiting for the next lazy update):
//     R_i = S_i + W_i + G_i + U_i                 (Eq. 6)
// S (service time) and W (queueing delay, incl. waiting for the GSN) are
// estimated as pmfs from sliding windows of measurements; G (two-way
// gateway delay) uses only its most recent value, because it fluctuates
// far less than the other parameters; U (lazy wait) gets its own window.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "core/pmf.hpp"
#include "core/sliding_window.hpp"
#include "sim/time.hpp"

namespace aqueduct::core {

/// Per-replica performance history kept in a client's information
/// repository (paper Section 5.4).
///
/// Every mutation that can change the derived response-time distributions
/// (a window push or a gateway-delay update) advances version(), so the
/// Eq. 5/6 pmfs and their CDF-at-deadline can be memoized between
/// publication/reply events. last_reply_at is deliberately unversioned:
/// it only feeds the ert sort, never the distributions.
struct PerfHistory {
  explicit PerfHistory(std::size_t window_size)
      : service(window_size), queueing(window_size), lazy_wait(window_size) {}

  SlidingWindow<sim::Duration> service;    // t_s samples
  SlidingWindow<sim::Duration> queueing;   // t_q samples
  SlidingWindow<sim::Duration> lazy_wait;  // t_b samples (deferred reads)
  /// When this client last received a reply from the replica (for the
  /// elapsed-response-time sort in Algorithm 1). kEpoch if never.
  sim::TimePoint last_reply_at = sim::kEpoch;

  /// Records the most recent two-way gateway-to-gateway delay t_g for this
  /// client-replica pair (only the latest value is kept, Section 5.2).
  void set_gateway_delay(sim::Duration tg) {
    gateway_delay_ = tg;
    ++gateway_version_;
  }

  /// nullopt until the first reply.
  const std::optional<sim::Duration>& gateway_delay() const {
    return gateway_delay_;
  }

  /// Monotonically increasing across every distribution-relevant mutation.
  /// Each event (publication sample, gateway update) bumps exactly one of
  /// the summed counters, so equal versions imply identical distributions.
  std::uint64_t version() const {
    return service.version() + queueing.version() + lazy_wait.version() +
           gateway_version_;
  }

  bool has_samples() const { return !service.empty(); }

 private:
  std::optional<sim::Duration> gateway_delay_;
  std::uint64_t gateway_version_ = 0;
};

/// Computes F^I_{R_i}(d) and F^D_{R_i}(d) from a PerfHistory.
class ResponseTimeModel {
 public:
  explicit ResponseTimeModel(
      sim::Duration resolution = std::chrono::milliseconds(1))
      : resolution_(resolution) {}

  /// pmf of S + W + G (Eq. 5). Empty if the service window is empty.
  Pmf immediate_pmf(const PerfHistory& history) const;

  /// pmf of S + W + G + U (Eq. 6). If no lazy-wait samples exist yet,
  /// `fallback_lazy_wait` (when provided, typically half the lazy-update
  /// interval) substitutes for the U pmf; otherwise the result is empty.
  Pmf deferred_pmf(const PerfHistory& history,
                   std::optional<sim::Duration> fallback_lazy_wait = {}) const;

  /// Eq. 6 from an already-computed Eq. 5 pmf: adds the U term without
  /// re-convolving S + W + G. Bit-identical to deferred_pmf() when
  /// `immediate` equals immediate_pmf(history); memo rebuilds use it to
  /// halve their convolution cost.
  Pmf deferred_from_immediate(
      const Pmf& immediate, const PerfHistory& history,
      std::optional<sim::Duration> fallback_lazy_wait = {}) const;

  /// F^I_{R_i}(d) = P(S + W + G <= d). 0 when no history exists — an
  /// unknown replica is never credited with meeting a deadline.
  double immediate_cdf(const PerfHistory& history, sim::Duration deadline) const;

  /// F^D_{R_i}(d) = P(S + W + G + U <= d).
  double deferred_cdf(const PerfHistory& history, sim::Duration deadline,
                      std::optional<sim::Duration> fallback_lazy_wait = {}) const;

  sim::Duration resolution() const { return resolution_; }

 private:
  Pmf window_pmf(const SlidingWindow<sim::Duration>& window) const;

  sim::Duration resolution_;
};

}  // namespace aqueduct::core
