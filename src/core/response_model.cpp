#include "core/response_model.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/check.hpp"

namespace aqueduct::core {

namespace {

/// Grid index at `resolution` — the same truncating rule as Pmf's
/// bucketing, so the integer pipeline lands samples in the same buckets.
std::int64_t bucket_index(sim::Duration v, sim::Duration resolution) {
  const auto r = resolution.count();
  return r <= 1 ? v.count() : v.count() / r;
}

}  // namespace

// ---- ResponseState ----

void ResponseState::SparseCounts::add(std::int64_t idx, std::int64_t delta) {
  auto it = std::lower_bound(
      bins.begin(), bins.end(), idx,
      [](const auto& bin, std::int64_t i) { return bin.first < i; });
  if (it != bins.end() && it->first == idx) {
    it->second += delta;
    AQUEDUCT_CHECK(it->second >= 0);
    if (it->second == 0) bins.erase(it);
  } else {
    // A negative delta must hit an existing bin: evictions remove samples
    // that were previously counted.
    AQUEDUCT_CHECK(delta > 0);
    bins.insert(it, {idx, delta});
  }
  n += delta;
}

void ResponseState::DenseCounts::add(std::int64_t idx, std::int64_t delta) {
  if (c.empty()) {
    lo = idx;
    c.push_back(delta);
    return;
  }
  if (idx < lo) {
    c.insert(c.begin(), static_cast<std::size_t>(lo - idx), 0);
    lo = idx;
  } else if (idx - lo >= static_cast<std::int64_t>(c.size())) {
    c.resize(static_cast<std::size_t>(idx - lo) + 1, 0);
  }
  c[static_cast<std::size_t>(idx - lo)] += delta;
}

void ResponseState::rebuild(const PerfHistory& history,
                            sim::Duration resolution) {
  AQUEDUCT_CHECK(resolution > sim::Duration::zero());
  resolution_ = resolution;
  s_.clear();
  w_.clear();
  u_.clear();
  c_.clear();
  c_built_ = false;
  d_.clear();
  d_built_ = false;
  built_ = false;
  if (history.service.empty()) return;

  const auto fill = [&](const SlidingWindow<sim::Duration>& win,
                        SparseCounts& out) {
    win.for_each(
        [&](sim::Duration v) { out.add(bucket_index(v, resolution_), 1); });
  };
  fill(history.service, s_);
  fill(history.queueing, w_);
  fill(history.lazy_wait, u_);
  if (!w_.bins.empty()) rebuild_c();
  built_ = true;
}

void ResponseState::rebuild_c() {
  c_.clear();
  c_built_ = false;
  if (s_.bins.empty() || w_.bins.empty()) return;
  const std::int64_t lo = s_.bins.front().first + w_.bins.front().first;
  const std::int64_t hi = s_.bins.back().first + w_.bins.back().first;
  c_.lo = lo;
  c_.c.assign(static_cast<std::size_t>(hi - lo) + 1, 0);
  for (const auto& [si, sc] : s_.bins) {
    for (const auto& [wj, wc] : w_.bins) {
      c_.c[static_cast<std::size_t>(si + wj - lo)] += sc * wc;
    }
  }
  c_built_ = true;
  Pmf::count_convolution();
}

void ResponseState::build_d() const {
  d_.clear();
  d_built_ = false;
  if (u_.bins.empty()) return;
  const std::int64_t ulo = u_.bins.front().first;
  const std::int64_t uhi = u_.bins.back().first;
  if (c_built_) {
    d_.lo = c_.lo + ulo;
    d_.c.assign(c_.c.size() + static_cast<std::size_t>(uhi - ulo), 0);
    for (std::size_t i = 0; i < c_.c.size(); ++i) {
      const std::int64_t cv = c_.c[i];
      if (cv == 0) continue;
      for (const auto& [uj, uc] : u_.bins) {
        d_.c[i + static_cast<std::size_t>(uj - ulo)] += cv * uc;
      }
    }
  } else {
    // Eq. 5 degenerates to S alone while the queueing window is empty.
    d_.lo = s_.bins.front().first + ulo;
    d_.c.assign(static_cast<std::size_t>(s_.bins.back().first -
                                         s_.bins.front().first + uhi - ulo) +
                    1,
                0);
    for (const auto& [si, sc] : s_.bins) {
      for (const auto& [uj, uc] : u_.bins) {
        d_.c[static_cast<std::size_t>(si + uj - d_.lo)] += sc * uc;
      }
    }
  }
  d_built_ = true;
  Pmf::count_convolution();
}

void ResponseState::apply_publication(
    sim::Duration ts, const std::optional<sim::Duration>& evicted_ts,
    sim::Duration tq, const std::optional<sim::Duration>& evicted_tq,
    const std::optional<sim::Duration>& tb,
    const std::optional<sim::Duration>& evicted_tb) {
  AQUEDUCT_CHECK(built_);
  const std::int64_t a = bucket_index(ts, resolution_);
  const std::int64_t b = bucket_index(tq, resolution_);

  if (!c_built_) {
    // The queueing window was empty at build time (never the case for
    // repository-fed histories, which push both windows together): refresh
    // the products wholesale.
    s_.add(a, 1);
    if (evicted_ts) s_.add(bucket_index(*evicted_ts, resolution_), -1);
    w_.add(b, 1);
    if (evicted_tq) w_.add(bucket_index(*evicted_tq, resolution_), -1);
    if (tb) {
      u_.add(bucket_index(*tb, resolution_), 1);
      if (evicted_tb) u_.add(bucket_index(*evicted_tb, resolution_), -1);
    }
    rebuild_c();
    d_.clear();
    d_built_ = false;
    return;
  }

  // C = cS (*) cW updated in two exact steps:
  //   C += dS (*) cW_old   (then fold dS into cS)
  //   C += cS_new (*) dW   (then fold dW into cW)
  // which telescopes to cS_new (*) cW_new. The touched (index, delta)
  // pairs are collected so D can absorb them below without a convolution.
  std::vector<std::pair<std::int64_t, std::int64_t>> delta_c;
  delta_c.reserve(2 * (w_.bins.size() + s_.bins.size() + 2));
  for (const auto& [wj, wc] : w_.bins) {
    c_.add(a + wj, wc);
    delta_c.emplace_back(a + wj, wc);
  }
  if (evicted_ts) {
    const std::int64_t a2 = bucket_index(*evicted_ts, resolution_);
    for (const auto& [wj, wc] : w_.bins) {
      c_.add(a2 + wj, -wc);
      delta_c.emplace_back(a2 + wj, -wc);
    }
    s_.add(a, 1);
    s_.add(a2, -1);
  } else {
    s_.add(a, 1);
  }
  for (const auto& [si, sc] : s_.bins) {
    c_.add(si + b, sc);
    delta_c.emplace_back(si + b, sc);
  }
  if (evicted_tq) {
    const std::int64_t b2 = bucket_index(*evicted_tq, resolution_);
    for (const auto& [si, sc] : s_.bins) {
      c_.add(si + b2, -sc);
      delta_c.emplace_back(si + b2, -sc);
    }
    w_.add(b, 1);
    w_.add(b2, -1);
  } else {
    w_.add(b, 1);
  }

  // D = C (*) cU follows as D += dC (*) cU_old, then D += C_new (*) dU:
  // (C + dC)(U + dU) = CU + dC·U + C_new·dU.
  if (d_built_) {
    for (const auto& [dk, dv] : delta_c) {
      for (const auto& [uj, uc] : u_.bins) {
        d_.add(dk + uj, dv * uc);
      }
    }
  }
  if (tb) {
    const std::int64_t g = bucket_index(*tb, resolution_);
    if (d_built_) {
      for (std::size_t i = 0; i < c_.c.size(); ++i) {
        const std::int64_t cv = c_.c[i];
        if (cv == 0) continue;
        const std::int64_t ci = c_.lo + static_cast<std::int64_t>(i);
        d_.add(ci + g, cv);
        if (evicted_tb) {
          d_.add(ci + bucket_index(*evicted_tb, resolution_), -cv);
        }
      }
    }
    u_.add(g, 1);
    if (evicted_tb) u_.add(bucket_index(*evicted_tb, resolution_), -1);
  }
}

Pmf ResponseState::materialize(const DenseCounts& counts, double inv,
                               std::int64_t origin_idx_offset,
                               double epsilon) const {
  std::vector<double> mass(counts.c.size());
  for (std::size_t i = 0; i < counts.c.size(); ++i) {
    mass[i] = static_cast<double>(counts.c[i]) * inv;
  }
  const std::int64_t r = resolution_.count();
  return Pmf::from_grid(sim::Duration((counts.lo + origin_idx_offset) * r),
                        resolution_, std::move(mass))
      .truncate_tail(epsilon);
}

Pmf ResponseState::immediate(const std::optional<sim::Duration>& gateway,
                             double epsilon) const {
  if (!built_ || s_.n == 0) return {};
  Pmf p;
  if (c_built_) {
    p = materialize(c_, 1.0 / static_cast<double>(s_.n * w_.n), 0, epsilon);
  } else {
    DenseCounts tmp;
    tmp.lo = s_.bins.front().first;
    tmp.c.assign(
        static_cast<std::size_t>(s_.bins.back().first - tmp.lo) + 1, 0);
    for (const auto& [si, sc] : s_.bins) {
      tmp.c[static_cast<std::size_t>(si - tmp.lo)] = sc;
    }
    p = materialize(tmp, 1.0 / static_cast<double>(s_.n), 0, epsilon);
  }
  // The gateway delay shifts the grid by its exact value (paper Section
  // 5.2 keeps only the latest G; the sparse pipeline never re-bucketed it
  // for Eq. 5).
  if (gateway) p = p.shift(*gateway);
  return p;
}

Pmf ResponseState::deferred(const std::optional<sim::Duration>& gateway,
                            const std::optional<sim::Duration>& fallback,
                            double epsilon) const {
  if (!built_ || s_.n == 0) return {};
  if (u_.n > 0) {
    if (!d_built_) build_d();
    const std::int64_t denom = (w_.n > 0 ? s_.n * w_.n : s_.n) * u_.n;
    // Convolving the G-shifted Eq. 5 pmf with U re-buckets the sum, which
    // truncates the G phase to a whole bucket — reproduced here so the
    // incremental pipeline lands on the identical grid.
    const std::int64_t goff =
        gateway ? bucket_index(*gateway, resolution_) : 0;
    return materialize(d_, 1.0 / static_cast<double>(denom), goff, epsilon);
  }
  if (fallback) return immediate(gateway, epsilon).shift(*fallback);
  return {};
}

// ---- ResponseTimeModel ----

Pmf ResponseTimeModel::immediate_pmf(const PerfHistory& history) const {
  if (history.service.empty()) return {};
  ResponseState state;
  state.rebuild(history, resolution_);
  return state.immediate(history.gateway_delay(), epsilon_);
}

Pmf ResponseTimeModel::deferred_pmf(
    const PerfHistory& history,
    std::optional<sim::Duration> fallback_lazy_wait) const {
  if (history.service.empty()) return {};
  ResponseState state;
  state.rebuild(history, resolution_);
  return state.deferred(history.gateway_delay(), fallback_lazy_wait, epsilon_);
}

Pmf ResponseTimeModel::deferred_from_immediate(
    const Pmf& immediate, const PerfHistory& history,
    std::optional<sim::Duration> fallback_lazy_wait) const {
  if (immediate.empty()) return {};
  if (!history.lazy_wait.empty()) {
    ResponseState state;
    state.rebuild(history, resolution_);
    return state.deferred(history.gateway_delay(), fallback_lazy_wait,
                          epsilon_);
  }
  if (fallback_lazy_wait) return immediate.shift(*fallback_lazy_wait);
  return {};
}

double ResponseTimeModel::immediate_cdf(const PerfHistory& history,
                                        sim::Duration deadline) const {
  return immediate_pmf(history).cdf(deadline);
}

double ResponseTimeModel::deferred_cdf(
    const PerfHistory& history, sim::Duration deadline,
    std::optional<sim::Duration> fallback_lazy_wait) const {
  return deferred_pmf(history, fallback_lazy_wait).cdf(deadline);
}

}  // namespace aqueduct::core
