#include "core/response_model.hpp"

#include <vector>

namespace aqueduct::core {

Pmf ResponseTimeModel::window_pmf(
    const SlidingWindow<sim::Duration>& window) const {
  std::vector<sim::Duration> samples;
  samples.reserve(window.size());
  window.for_each([&](sim::Duration d) { samples.push_back(d); });
  return Pmf::from_samples(samples, resolution_);
}

Pmf ResponseTimeModel::immediate_pmf(const PerfHistory& history) const {
  if (history.service.empty()) return {};
  Pmf pmf = window_pmf(history.service);
  if (!history.queueing.empty()) {
    pmf = pmf.convolve(window_pmf(history.queueing));
  }
  if (history.gateway_delay()) {
    pmf = pmf.shift(*history.gateway_delay());
  }
  return pmf;
}

Pmf ResponseTimeModel::deferred_pmf(
    const PerfHistory& history,
    std::optional<sim::Duration> fallback_lazy_wait) const {
  return deferred_from_immediate(immediate_pmf(history), history,
                                 fallback_lazy_wait);
}

Pmf ResponseTimeModel::deferred_from_immediate(
    const Pmf& immediate, const PerfHistory& history,
    std::optional<sim::Duration> fallback_lazy_wait) const {
  if (immediate.empty()) return {};
  if (!history.lazy_wait.empty()) {
    return immediate.convolve(window_pmf(history.lazy_wait));
  }
  if (fallback_lazy_wait) {
    return immediate.shift(*fallback_lazy_wait);
  }
  return {};
}

double ResponseTimeModel::immediate_cdf(const PerfHistory& history,
                                        sim::Duration deadline) const {
  return immediate_pmf(history).cdf(deadline);
}

double ResponseTimeModel::deferred_cdf(
    const PerfHistory& history, sim::Duration deadline,
    std::optional<sim::Duration> fallback_lazy_wait) const {
  return deferred_pmf(history, fallback_lazy_wait).cdf(deadline);
}

}  // namespace aqueduct::core
