#include "core/pmf.hpp"

#include <algorithm>
#include <map>

#include "sim/check.hpp"

namespace aqueduct::core {

namespace {

sim::Duration bucket(sim::Duration v, sim::Duration resolution) {
  const auto r = resolution.count();
  if (r <= 1) return v;
  // Round to the nearest bucket center-left (floor), keeping 0 at 0.
  return sim::Duration((v.count() / r) * r);
}

// Thread-local so shared-nothing sweep workers (src/runner) meter their own
// runs without racing or perturbing each other's counts. Every scenario runs
// entirely on one thread, so a worker's before/after delta is exact.
thread_local std::uint64_t g_convolutions = 0;

}  // namespace

std::uint64_t Pmf::convolutions_performed() { return g_convolutions; }

void Pmf::reset_convolution_counter() { g_convolutions = 0; }

Pmf Pmf::point_mass(sim::Duration value) {
  Pmf pmf;
  pmf.entries_.emplace_back(value, 1.0);
  pmf.resolution_ = sim::Duration(1);
  return pmf;
}

Pmf Pmf::from_samples(std::span<const sim::Duration> samples,
                      sim::Duration resolution) {
  AQUEDUCT_CHECK(resolution > sim::Duration::zero());
  Pmf pmf;
  pmf.resolution_ = resolution;
  if (samples.empty()) return pmf;
  std::map<sim::Duration, double> mass;
  const double p = 1.0 / static_cast<double>(samples.size());
  for (const sim::Duration s : samples) mass[bucket(s, resolution)] += p;
  pmf.entries_.assign(mass.begin(), mass.end());
  return pmf;
}

Pmf Pmf::convolve(const Pmf& other) const {
  Pmf out;
  out.resolution_ = std::max(resolution_, other.resolution_);
  if (empty() || other.empty()) return out;
  ++g_convolutions;
  std::map<sim::Duration, double> mass;
  for (const auto& [xv, xp] : entries_) {
    for (const auto& [yv, yp] : other.entries_) {
      mass[bucket(xv + yv, out.resolution_)] += xp * yp;
    }
  }
  out.entries_.assign(mass.begin(), mass.end());
  return out;
}

Pmf Pmf::shift(sim::Duration offset) const {
  Pmf out;
  out.resolution_ = resolution_;
  out.entries_.reserve(entries_.size());
  for (const auto& [v, p] : entries_) out.entries_.emplace_back(v + offset, p);
  return out;
}

double Pmf::cdf(sim::Duration d) const {
  double acc = 0.0;
  for (const auto& [v, p] : entries_) {
    if (v > d) break;
    acc += p;
  }
  return acc;
}

sim::Duration Pmf::mean() const {
  AQUEDUCT_CHECK(!empty());
  double acc = 0.0;
  for (const auto& [v, p] : entries_) acc += static_cast<double>(v.count()) * p;
  return sim::Duration(static_cast<sim::Duration::rep>(acc));
}

sim::Duration Pmf::quantile(double p) const {
  AQUEDUCT_CHECK(!empty());
  AQUEDUCT_CHECK(p > 0.0 && p <= 1.0);
  double acc = 0.0;
  for (const auto& [v, prob] : entries_) {
    acc += prob;
    if (acc + 1e-12 >= p) return v;
  }
  return entries_.back().first;
}

double Pmf::total_mass() const {
  double acc = 0.0;
  for (const auto& [v, p] : entries_) acc += p;
  return acc;
}

}  // namespace aqueduct::core
