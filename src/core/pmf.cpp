#include "core/pmf.hpp"

#include <algorithm>
#include <limits>

#include "sim/check.hpp"

namespace aqueduct::core {

namespace {

/// Widest dense grid a single pmf may occupy. Response-time values are
/// bounded (milliseconds to seconds) and resolutions are >= 100us in every
/// model configuration, so real spans are a few hundred buckets; hitting
/// this cap means a caller picked a resolution wildly too fine for its
/// value range and would silently burn memory.
constexpr std::size_t kMaxSpan = std::size_t{1} << 22;

/// Grid index of value v at resolution r: truncating division, so the
/// bucket *value* (index * r) reproduces the sparse representation's
/// floor-to-bucket rule `(v / r) * r` exactly (identity when r <= 1).
std::int64_t bucket_index(std::int64_t v, std::int64_t r) {
  return r <= 1 ? v : v / r;
}

// Thread-local so shared-nothing sweep workers (src/runner) meter their own
// runs without racing or perturbing each other's counts. Every scenario runs
// entirely on one thread, so a worker's before/after delta is exact.
thread_local std::uint64_t g_convolutions = 0;

}  // namespace

std::uint64_t Pmf::convolutions_performed() { return g_convolutions; }

void Pmf::reset_convolution_counter() { g_convolutions = 0; }

void Pmf::count_convolution() { ++g_convolutions; }

void Pmf::finalize() {
  std::size_t lo = 0;
  std::size_t hi = mass_.size();
  while (lo < hi && mass_[lo] == 0.0) ++lo;
  while (hi > lo && mass_[hi - 1] == 0.0) --hi;
  if (lo == hi) {
    origin_ = sim::Duration::zero();
    mass_.clear();
    prefix_.clear();
    nonzero_ = 0;
    return;
  }
  if (lo > 0 || hi < mass_.size()) {
    origin_ += sim::Duration(static_cast<std::int64_t>(lo) *
                             resolution_.count());
    mass_.erase(mass_.begin() + static_cast<std::ptrdiff_t>(hi), mass_.end());
    mass_.erase(mass_.begin(), mass_.begin() + static_cast<std::ptrdiff_t>(lo));
  }
  prefix_.resize(mass_.size());
  // Accumulate only nonzero buckets, in ascending order — the same additions
  // in the same order as a sequential scan over the sparse entry list, so
  // cdf() values are bit-identical to that scan.
  double acc = 0.0;
  nonzero_ = 0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (mass_[i] != 0.0) {
      acc += mass_[i];
      ++nonzero_;
    }
    prefix_[i] = acc;
  }
}

Pmf Pmf::point_mass(sim::Duration value) {
  Pmf pmf;
  pmf.origin_ = value;
  pmf.resolution_ = sim::Duration(1);
  pmf.mass_.assign(1, 1.0);
  pmf.finalize();
  return pmf;
}

Pmf Pmf::from_samples(std::span<const sim::Duration> samples,
                      sim::Duration resolution) {
  AQUEDUCT_CHECK(resolution > sim::Duration::zero());
  Pmf pmf;
  pmf.resolution_ = resolution;
  if (samples.empty()) return pmf;

  const std::int64_t r = resolution.count();
  std::int64_t min_idx = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_idx = std::numeric_limits<std::int64_t>::min();
  for (const sim::Duration s : samples) {
    const std::int64_t idx = bucket_index(s.count(), r);
    min_idx = std::min(min_idx, idx);
    max_idx = std::max(max_idx, idx);
  }
  const auto span = static_cast<std::size_t>(max_idx - min_idx) + 1;
  AQUEDUCT_CHECK_MSG(span <= kMaxSpan,
                     "pmf span too wide for the chosen resolution");

  // Count occurrences per bucket, then scale once: mass = count * (1/n).
  // ResponseState materializes its integer convolution counts with the same
  // single multiply, which is what makes the cached and uncached Eq. 5/6
  // pipelines bit-identical.
  std::vector<std::int64_t> counts(span, 0);
  for (const sim::Duration s : samples) {
    ++counts[static_cast<std::size_t>(bucket_index(s.count(), r) - min_idx)];
  }
  const double inv = 1.0 / static_cast<double>(samples.size());
  pmf.origin_ = sim::Duration(min_idx * r);
  pmf.mass_.resize(span);
  for (std::size_t i = 0; i < span; ++i) {
    pmf.mass_[i] = static_cast<double>(counts[i]) * inv;
  }
  pmf.finalize();
  return pmf;
}

Pmf Pmf::from_grid(sim::Duration origin, sim::Duration resolution,
                   std::vector<double> mass) {
  AQUEDUCT_CHECK(resolution > sim::Duration::zero());
  AQUEDUCT_CHECK_MSG(mass.size() <= kMaxSpan,
                     "pmf span too wide for the chosen resolution");
  Pmf pmf;
  pmf.origin_ = origin;
  pmf.resolution_ = resolution;
  pmf.mass_ = std::move(mass);
  pmf.finalize();
  return pmf;
}

Pmf Pmf::convolve(const Pmf& other) const {
  Pmf out;
  out.resolution_ = std::max(resolution_, other.resolution_);
  if (empty() || other.empty()) return out;
  ++g_convolutions;

  const std::int64_t rr = out.resolution_.count();
  const std::int64_t rx = resolution_.count();
  const std::int64_t ry = other.resolution_.count();
  const std::int64_t ox = origin_.count();
  const std::int64_t oy = other.origin_.count();
  // Bucket index is monotone in the value, so the extreme sums bound the
  // output grid.
  const std::int64_t lo = bucket_index(ox + oy, rr);
  const std::int64_t hi = bucket_index(
      ox + static_cast<std::int64_t>(mass_.size() - 1) * rx + oy +
          static_cast<std::int64_t>(other.mass_.size() - 1) * ry,
      rr);
  const auto span = static_cast<std::size_t>(hi - lo) + 1;
  AQUEDUCT_CHECK_MSG(span <= kMaxSpan,
                     "convolution span too wide for the chosen resolution");

  // x-major accumulation: per output bucket the products arrive in the same
  // (x ascending, y ascending) order as the sparse map implementation, so
  // the sums round identically.
  std::vector<double> m(span, 0.0);
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double xp = mass_[i];
    if (xp == 0.0) continue;
    const std::int64_t xv = ox + static_cast<std::int64_t>(i) * rx;
    for (std::size_t j = 0; j < other.mass_.size(); ++j) {
      const double yp = other.mass_[j];
      if (yp == 0.0) continue;
      const std::int64_t yv = oy + static_cast<std::int64_t>(j) * ry;
      m[static_cast<std::size_t>(bucket_index(xv + yv, rr) - lo)] += xp * yp;
    }
  }
  out.origin_ = sim::Duration(lo * rr);
  out.mass_ = std::move(m);
  out.finalize();
  return out;
}

Pmf Pmf::shift(sim::Duration offset) const {
  Pmf out = *this;
  if (!out.mass_.empty()) out.origin_ += offset;
  return out;
}

Pmf Pmf::truncate_tail(double epsilon) const {
  if (epsilon <= 0.0 || empty()) return *this;
  const double total = prefix_.back();
  // Smallest k whose upper-tail mass (total - prefix_[k]) is <= epsilon;
  // the tail is non-increasing in k, so binary search the crossover. k
  // always exists (the tail above the last bucket is 0) and mass_[k] > 0
  // (the tail only shrinks at nonzero buckets), so no trailing zeros.
  std::size_t lo = 0;
  std::size_t hi = prefix_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (total - prefix_[mid] <= epsilon) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo + 1 == mass_.size()) return *this;
  Pmf out;
  out.origin_ = origin_;
  out.resolution_ = resolution_;
  out.mass_.assign(mass_.begin(),
                   mass_.begin() + static_cast<std::ptrdiff_t>(lo) + 1);
  out.finalize();
  return out;
}

sim::Duration Pmf::mean() const {
  AQUEDUCT_CHECK(!empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (mass_[i] == 0.0) continue;
    const std::int64_t v =
        origin_.count() + static_cast<std::int64_t>(i) * resolution_.count();
    acc += static_cast<double>(v) * mass_[i];
  }
  return sim::Duration(static_cast<sim::Duration::rep>(acc));
}

sim::Duration Pmf::quantile(double p) const {
  AQUEDUCT_CHECK(!empty());
  AQUEDUCT_CHECK(p > 0.0 && p <= 1.0);
  // First bucket where the cumulative mass crosses the threshold, under the
  // exact predicate the old sequential scan used (`acc + 1e-12 >= p`). The
  // predicate is monotone in the index, so binary search finds the same
  // bucket the scan would return — a nonzero one, since the prefix only
  // crosses at buckets that add mass.
  std::size_t lo = 0;
  std::size_t hi = prefix_.size();  // == size means "never crossed"
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prefix_[mid] + 1e-12 >= p) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == prefix_.size()) lo = prefix_.size() - 1;  // return the max value
  return origin_ + sim::Duration(static_cast<std::int64_t>(lo) *
                                 resolution_.count());
}

std::vector<std::pair<sim::Duration, double>> Pmf::entries() const {
  std::vector<std::pair<sim::Duration, double>> out;
  out.reserve(nonzero_);
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (mass_[i] == 0.0) continue;
    out.emplace_back(origin_ + sim::Duration(static_cast<std::int64_t>(i) *
                                             resolution_.count()),
                     mass_[i]);
  }
  return out;
}

}  // namespace aqueduct::core
