#include "core/qos.hpp"

namespace aqueduct::core {

std::string to_string(Ordering o) {
  switch (o) {
    case Ordering::kSequential:
      return "sequential";
    case Ordering::kFifo:
      return "fifo";
  }
  return "unknown";
}

}  // namespace aqueduct::core
