// Replica selection (paper Section 5.3, Algorithm 1) and baseline
// strategies used for comparison benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/qos.hpp"
#include "net/node.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::core {

/// One row of the input vector V of Algorithm 1:
/// <i, F^I_{R_i}(d), F^D_{R_i}(d), ert_i>, plus the primary/secondary flag
/// that decides which accumulator the replica contributes to.
struct CandidateReplica {
  net::NodeId id;
  bool is_primary = false;
  /// F^I_{R_i}(d): probability of an immediate response within d.
  double immediate_cdf = 0.0;
  /// F^D_{R_i}(d): probability of a deferred response within d
  /// (secondaries only; ignored for primaries).
  double deferred_cdf = 0.0;
  /// Elapsed response time: duration since this client last received a
  /// reply from the replica. Larger = least recently used.
  sim::Duration ert = sim::Duration::zero();
};

struct SelectionResult {
  /// The selected set K. Never includes the sequencer — the caller extends
  /// the transmission set with the sequencer (Algorithm 1 lines 13/16),
  /// which merely assigns the GSN and does not service reads.
  std::vector<net::NodeId> selected;
  /// True if the terminating condition P_K(d) >= P_c(d) was satisfied;
  /// false if the algorithm exhausted the list (K = all replicas).
  bool satisfied = false;
  /// The predicted P_K(d) for the returned set (with the max-CDF member
  /// excluded, per the single-failure-tolerance rule).
  double predicted_probability = 0.0;
};

/// Everything a selector needs to choose a read's transmission set,
/// bundled so that adding an input (a new knob, a timestamp, a cache
/// handle) does not churn every selector signature again.
/// InfoRepository::selection_context() builds one with the candidate CDFs
/// served from its memoized response-time cache.
struct SelectionContext {
  /// Algorithm 1's input vector V. Selectors may reorder or consume it.
  std::vector<CandidateReplica> candidates;
  /// P(A_s(t) <= a) for the secondary group (Eq. 4); primaries always
  /// satisfy the threshold (their factor is 1).
  double stale_factor = 1.0;
  QoSSpec qos;
  /// Selection time (candidate ert values are relative to it).
  sim::TimePoint now = sim::kEpoch;
  /// Randomness source for stochastic policies; may be null for
  /// deterministic selectors.
  sim::Rng* rng = nullptr;
};

/// Strategy interface so the client handler and benches can swap selectors.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  /// Chooses a subset of `ctx.candidates` to service a read with spec
  /// `ctx.qos`. The context is mutable: selectors sort the candidate
  /// vector in place.
  virtual SelectionResult select(SelectionContext& ctx) = 0;

  virtual std::string name() const = 0;
};

/// Knobs for ablation studies of Algorithm 1's two design choices.
struct ProbabilisticOptions {
  /// How the growing-prefix subset search is evaluated. Both strategies
  /// return bit-identical results (same selected set, same order, same
  /// predicted probability to the last ulp) — kPruned is an evaluation
  /// strategy, not a different policy.
  enum class SubsetSearch {
    /// Branch-and-bound over a lazily sorted candidate stream: an O(n)
    /// reachability bound first decides whether *any* prefix can satisfy
    /// Pc(d) (the loop's P_K(d) is monotone in the prefix, so the
    /// all-included probability bounds every prefix); when it can, the
    /// sorted order is popped off a heap one candidate at a time, so a
    /// selection that settles after k replicas costs O(n + k log n)
    /// instead of the full O(n log n) sort.
    kPruned,
    /// The paper's literal enumerate-and-grow: sort everything, scan the
    /// prefix. Kept as the oracle the scale bench and the property tests
    /// compare kPruned against.
    kExhaustiveScan,
  };

  /// Exclude the selected member with the highest immediate CDF from the
  /// P_K(d) computation, so the chosen set tolerates one replica failure
  /// (paper Section 5.3). Disabling this reproduces the non-fault-tolerant
  /// variant.
  bool tolerate_one_failure = true;
  /// Visit replicas in decreasing elapsed-response-time order (hot-spot
  /// avoidance). Disabling sorts by decreasing immediate CDF instead
  /// (pure greedy — all clients then pick the same fast replicas).
  bool sort_by_ert = true;
  SubsetSearch subset_search = SubsetSearch::kPruned;
};

/// The paper's Algorithm 1: state-based probabilistic replica selection.
class ProbabilisticSelector final : public ReplicaSelector {
 public:
  explicit ProbabilisticSelector(ProbabilisticOptions options = {})
      : options_(options) {}

  SelectionResult select(SelectionContext& ctx) override;

  std::string name() const override;

 private:
  ProbabilisticOptions options_;
};

/// Baseline: allocate every available replica to every request (the
/// "simple approach" the paper rejects as unscalable, Section 5).
class SelectAllSelector final : public ReplicaSelector {
 public:
  SelectionResult select(SelectionContext& ctx) override;
  std::string name() const override { return "select-all"; }
};

/// Baseline: a single replica per request (round-robin by least recently
/// used, or uniformly at random) — fast under light load, but a single
/// slow or crashed replica causes a timing failure.
class SelectOneSelector final : public ReplicaSelector {
 public:
  enum class Policy { kRandom, kLeastRecentlyUsed };
  explicit SelectOneSelector(Policy policy) : policy_(policy) {}

  SelectionResult select(SelectionContext& ctx) override;
  std::string name() const override;

 private:
  Policy policy_;
};

/// Baseline: always the k replicas with the highest immediate CDF.
class FixedKSelector final : public ReplicaSelector {
 public:
  explicit FixedKSelector(std::size_t k) : k_(k) {}

  SelectionResult select(SelectionContext& ctx) override;
  std::string name() const override;

 private:
  std::size_t k_;
};

}  // namespace aqueduct::core
