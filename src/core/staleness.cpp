#include "core/staleness.hpp"

#include <cmath>

#include "sim/check.hpp"

namespace aqueduct::core {

double poisson_cdf(double mean, std::uint64_t a) {
  AQUEDUCT_CHECK(mean >= 0.0);
  if (mean == 0.0) return 1.0;
  // Sum terms in log space to stay stable for large means.
  const double log_mean = std::log(mean);
  double acc = 0.0;
  for (std::uint64_t n = 0; n <= a; ++n) {
    const double log_term =
        -mean + static_cast<double>(n) * log_mean - std::lgamma(static_cast<double>(n) + 1.0);
    acc += std::exp(log_term);
  }
  return acc > 1.0 ? 1.0 : acc;
}

EmpiricalStalenessModel::EmpiricalStalenessModel(std::vector<sim::Duration> gaps,
                                                 std::uint64_t seed,
                                                 std::size_t resamples)
    : gaps_(std::move(gaps)), rng_(seed), resamples_(resamples) {
  AQUEDUCT_CHECK(resamples_ > 0);
}

double EmpiricalStalenessModel::staleness_factor(Staleness a,
                                                 sim::Duration elapsed) const {
  if (gaps_.empty()) {
    // No observed updates at all: the secondary state cannot be stale.
    return 1.0;
  }
  std::size_t within = 0;
  for (std::size_t i = 0; i < resamples_; ++i) {
    // Count how many resampled arrivals fit inside `elapsed`.
    sim::Duration t = sim::Duration::zero();
    std::uint64_t count = 0;
    while (count <= a) {
      t += gaps_[rng_.uniform_int(gaps_.size())];
      if (t > elapsed) break;
      ++count;
    }
    if (count <= a) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(resamples_);
}

}  // namespace aqueduct::core
