// Staleness factor estimation (paper Sections 5.1.3 and 5.4.1).
//
// The staleness of the secondary group at request-transmission time t is
// A_s(t) = N_u(t_l): the number of update requests the primary group has
// received since the last lazy update. The client estimates
// P(A_s(t) <= a) probabilistically instead of probing the primaries:
//   * a Poisson arrival model with rate λ_u (the paper's choice), or
//   * an empirical model resampling observed inter-update gaps (the paper
//     notes the approach generalizes to non-Poisson arrivals).
//
// λ_u and the elapsed-since-lazy-update duration t_l are recovered from the
// lazy publisher's performance broadcasts: <n_u, t_u> histories for the
// rate, and the latest <n_L, t_L> plus the local receive timestamp for t_l
// via t_l = (t_L + t_z) mod T_L.
#pragma once

#include <cstdint>
#include <vector>

#include "core/qos.hpp"
#include "core/sliding_window.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace aqueduct::core {

/// P(N <= a) for N ~ Poisson(mean). Numerically stable for large means
/// (log-space terms via lgamma).
double poisson_cdf(double mean, std::uint64_t a);

/// Estimates the update arrival rate λ_u from a sliding window of
/// <n_u, t_u> pairs published by the lazy publisher (Section 5.4.1):
/// λ_u = Σ n_u^i / Σ t_u^i over the window.
class ArrivalRateEstimator {
 public:
  explicit ArrivalRateEstimator(std::size_t window_size)
      : window_(window_size) {}

  void record(std::uint32_t updates, sim::Duration interval) {
    window_.push({updates, interval});
  }

  /// Updates per second; 0 if no data or no elapsed time observed.
  double rate_per_second() const {
    std::uint64_t updates = 0;
    sim::Duration elapsed = sim::Duration::zero();
    window_.for_each([&](const Sample& s) {
      updates += s.updates;
      elapsed += s.interval;
    });
    if (elapsed <= sim::Duration::zero()) return 0.0;
    return static_cast<double>(updates) / sim::to_sec(elapsed);
  }

  bool has_data() const { return !window_.empty(); }

 private:
  struct Sample {
    std::uint32_t updates;
    sim::Duration interval;
  };
  SlidingWindow<Sample> window_;
};

/// Tracks the most recent <n_L, t_L> broadcast and reconstructs the
/// duration t_l elapsed since the last lazy update at any later instant:
/// t_l = (t_L + t_z) mod T_L, where t_z is the time since the broadcast was
/// received and T_L the lazy-update period (Section 5.4.1).
class LazyIntervalTracker {
 public:
  void record(sim::Duration t_l_at_publish, sim::Duration period,
              sim::TimePoint received_at) {
    t_l_at_publish_ = t_l_at_publish;
    period_ = period;
    received_at_ = received_at;
    has_data_ = true;
  }

  bool has_data() const { return has_data_; }
  sim::Duration period() const { return period_; }

  /// Estimated time since the last lazy update, at instant `now`.
  sim::Duration elapsed_since_lazy_update(sim::TimePoint now) const {
    if (!has_data_ || period_ <= sim::Duration::zero()) {
      return sim::Duration::zero();
    }
    const sim::Duration t_z = now - received_at_;
    const auto total = (t_l_at_publish_ + t_z).count();
    return sim::Duration(total % period_.count());
  }

 private:
  bool has_data_ = false;
  sim::Duration t_l_at_publish_ = sim::Duration::zero();
  sim::Duration period_ = sim::Duration::zero();
  sim::TimePoint received_at_ = sim::kEpoch;
};

/// Interface: P(A_s(t) <= a) given the elapsed time since the last lazy
/// update.
class StalenessModel {
 public:
  virtual ~StalenessModel() = default;
  virtual double staleness_factor(Staleness a, sim::Duration elapsed) const = 0;
};

/// The paper's model: update arrivals ~ Poisson(λ_u), so
/// P(A_s(t) <= a) = P(N_u(t_l) <= a) = Σ_{n=0}^{a} (λ_u t_l)^n e^{-λ_u t_l}/n!.
class PoissonStalenessModel final : public StalenessModel {
 public:
  explicit PoissonStalenessModel(double rate_per_second)
      : rate_per_second_(rate_per_second) {}

  double staleness_factor(Staleness a, sim::Duration elapsed) const override {
    const double mean = rate_per_second_ * sim::to_sec(elapsed);
    return poisson_cdf(mean, a);
  }

  double rate_per_second() const { return rate_per_second_; }

 private:
  double rate_per_second_;
};

/// Non-Poisson variant (paper Section 5.1.3 notes this is possible):
/// estimates P(N(t_l) <= a) by Monte-Carlo resampling of observed
/// inter-update gaps. Useful when arrivals are bursty.
class EmpiricalStalenessModel final : public StalenessModel {
 public:
  /// `gaps`: recent inter-update intervals; `seed`: for resampling
  /// determinism; `resamples`: Monte-Carlo iterations.
  EmpiricalStalenessModel(std::vector<sim::Duration> gaps, std::uint64_t seed,
                          std::size_t resamples = 200);

  double staleness_factor(Staleness a, sim::Duration elapsed) const override;

 private:
  std::vector<sim::Duration> gaps_;
  mutable sim::Rng rng_;
  std::size_t resamples_;
};

}  // namespace aqueduct::core
