// Higher-level QoS inputs (paper Section 7, "it is easy to extend our
// framework so that the clients can replace the probability of timely
// response with a higher-level specification, such as priority or the
// cost the client is willing to pay ... the middleware can then
// internally map these higher level inputs to an appropriate probability
// value").
#pragma once

#include <map>

#include "core/qos.hpp"
#include "sim/check.hpp"

namespace aqueduct::core {

/// Discrete client priority classes.
enum class Priority { kLow, kNormal, kHigh, kCritical };

/// Maps priorities or payment levels to the minimum probability of timely
/// response used by the selection algorithm.
class PriorityMapper {
 public:
  /// Default mapping; override per service with set_probability().
  PriorityMapper() {
    probability_[Priority::kLow] = 0.5;
    probability_[Priority::kNormal] = 0.8;
    probability_[Priority::kHigh] = 0.9;
    probability_[Priority::kCritical] = 0.99;
  }

  void set_probability(Priority priority, double probability) {
    AQUEDUCT_CHECK(probability > 0.0 && probability <= 1.0);
    probability_[priority] = probability;
  }

  double probability_for(Priority priority) const {
    return probability_.at(priority);
  }

  /// Builds a full QoS spec from a priority class.
  QoSSpec to_qos(Priority priority, Staleness staleness_threshold,
                 sim::Duration deadline) const {
    return QoSSpec{.staleness_threshold = staleness_threshold,
                   .deadline = deadline,
                   .min_probability = probability_for(priority)};
  }

  /// Maps a willingness-to-pay (in arbitrary cost units) to a probability:
  /// linear between the cheapest (`floor_probability` at cost 0) and the
  /// most expensive service level (`ceiling_probability` at `max_cost`).
  double probability_for_cost(double cost, double max_cost,
                              double floor_probability = 0.5,
                              double ceiling_probability = 0.99) const {
    AQUEDUCT_CHECK(max_cost > 0.0);
    AQUEDUCT_CHECK(floor_probability > 0.0 &&
                   floor_probability <= ceiling_probability &&
                   ceiling_probability <= 1.0);
    const double clamped = cost < 0.0 ? 0.0 : (cost > max_cost ? max_cost : cost);
    return floor_probability +
           (ceiling_probability - floor_probability) * (clamped / max_cost);
  }

 private:
  std::map<Priority, double> probability_;
};

}  // namespace aqueduct::core
