// Fixed-capacity sliding window of recent measurements (paper Section 5.2):
// "client handlers record the most recent l measurements of these
// parameters in separate sliding windows".
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/check.hpp"

namespace aqueduct::core {

template <typename T>
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    AQUEDUCT_CHECK(capacity_ > 0);
    ring_.reserve(capacity_);
  }

  /// Appends a value; once the window is full, returns the measurement it
  /// displaced (the oldest). Incremental consumers (ResponseState) use the
  /// evicted value to subtract the old sample's contribution from derived
  /// convolutions instead of rebuilding them.
  std::optional<T> push(const T& value) {
    std::optional<T> evicted;
    if (ring_.size() < capacity_) {
      ring_.push_back(value);
    } else {
      evicted = ring_[next_];
      ring_[next_] = value;
      next_ = (next_ + 1) % capacity_;
    }
    ++version_;
    return evicted;
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return ring_.empty(); }
  bool full() const { return ring_.size() == capacity_; }

  void clear() {
    ring_.clear();
    next_ = 0;
    ++version_;
  }

  /// Monotonically increasing mutation counter: bumped on every push() and
  /// clear(). Lets derived artifacts (pmfs, CDFs) be memoized and
  /// invalidated only when the window's contents actually changed.
  std::uint64_t version() const { return version_; }

  /// Values oldest-first.
  std::vector<T> values() const {
    std::vector<T> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      for (std::size_t i = 0; i < capacity_; ++i) {
        out.push_back(ring_[(next_ + i) % capacity_]);
      }
    }
    return out;
  }

  /// Applies `fn` to each stored value (order unspecified). Avoids the copy
  /// made by values() on hot paths such as pmf construction.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const T& v : ring_) fn(v);
  }

  /// Most recently pushed value. Requires !empty().
  const T& newest() const {
    AQUEDUCT_CHECK(!ring_.empty());
    if (ring_.size() < capacity_) return ring_.back();
    return ring_[(next_ + capacity_ - 1) % capacity_];
  }

 private:
  std::size_t capacity_;
  std::vector<T> ring_;
  std::size_t next_ = 0;  // index of the oldest element once full
  std::uint64_t version_ = 0;
};

}  // namespace aqueduct::core
