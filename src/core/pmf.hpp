// Discrete probability mass functions over durations.
//
// The paper (Section 5.2) estimates a replica's response-time distribution
// by forming the pmfs of the measured service time S and queueing delay W
// from sliding windows, then computing the pmf of R = S + W + G as a
// discrete convolution (plus the lazy-wait U for deferred reads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace aqueduct::core {

class Pmf {
 public:
  /// An empty pmf (no observations). cdf() of an empty pmf is 0 — callers
  /// treat "no data" pessimistically.
  Pmf() = default;

  /// Degenerate distribution: all mass at `value`.
  static Pmf point_mass(sim::Duration value);

  /// Relative-frequency pmf of the samples, bucketed at `resolution`.
  static Pmf from_samples(std::span<const sim::Duration> samples,
                          sim::Duration resolution);

  bool empty() const { return entries_.empty(); }
  std::size_t support_size() const { return entries_.size(); }

  /// pmf of X + Y for independent X ~ *this, Y ~ other. The result is
  /// re-bucketed at the coarser of the two resolutions. If either operand
  /// is empty the result is empty.
  Pmf convolve(const Pmf& other) const;

  /// Shifts the distribution by a constant (convolution with a point mass,
  /// done directly: the paper adds the latest gateway delay G this way).
  Pmf shift(sim::Duration offset) const;

  /// P(X <= d). Returns 0 for an empty pmf.
  double cdf(sim::Duration d) const;

  /// Expected value. Requires !empty().
  sim::Duration mean() const;

  /// Smallest x with P(X <= x) >= p. Requires !empty() and p in (0, 1].
  sim::Duration quantile(double p) const;

  /// Sum of all probabilities (1.0 up to rounding for a non-empty pmf).
  double total_mass() const;

  /// (value, probability) pairs sorted by value.
  const std::vector<std::pair<sim::Duration, double>>& entries() const {
    return entries_;
  }

  sim::Duration resolution() const { return resolution_; }

  /// Thread-local count of non-trivial convolutions performed (both
  /// operands non-empty) on the calling thread. The O(n·m) double loop
  /// dominates the selection hot path, so benches and cache-effectiveness
  /// tests meter it. Thread-local (not process-wide) so concurrent sweep
  /// workers neither race nor perturb each other's stats; a simulation runs
  /// entirely on one thread, so per-run deltas stay exact.
  static std::uint64_t convolutions_performed();
  static void reset_convolution_counter();

 private:
  std::vector<std::pair<sim::Duration, double>> entries_;
  sim::Duration resolution_{1};
};

}  // namespace aqueduct::core
