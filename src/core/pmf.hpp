// Discrete probability mass functions over durations.
//
// The paper (Section 5.2) estimates a replica's response-time distribution
// by forming the pmfs of the measured service time S and queueing delay W
// from sliding windows, then computing the pmf of R = S + W + G as a
// discrete convolution (plus the lazy-wait U for deferred reads).
//
// Representation (see DESIGN.md "Selection at scale"): a pmf is a flat
// contiguous array of probabilities over a fixed-resolution grid — mass_[i]
// is the probability at value origin_ + i * resolution_ — plus a running
// prefix-sum array, so cdf() is an O(1) index computation and quantile() a
// binary search instead of the linear entry scans the sparse map
// representation needed. Support is bounded: truncate_tail() drops upper-
// tail buckets whose cumulative mass is below a configurable epsilon, which
// both bounds the error (CDF shifts by at most epsilon at any deadline,
// total mass stays within [1 - epsilon, 1]) and keeps convolution operands
// short on the selection hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace aqueduct::core {

class Pmf {
 public:
  /// An empty pmf (no observations). cdf() of an empty pmf is 0 — callers
  /// treat "no data" pessimistically.
  Pmf() = default;

  /// Degenerate distribution: all mass at `value`.
  static Pmf point_mass(sim::Duration value);

  /// Relative-frequency pmf of the samples, bucketed at `resolution`.
  static Pmf from_samples(std::span<const sim::Duration> samples,
                          sim::Duration resolution);

  /// Dense-grid factory: mass[i] sits at `origin + i * resolution`. Leading
  /// and trailing zero buckets are trimmed; an all-zero vector yields an
  /// empty pmf. This is how ResponseState materializes Eq. 5/6 pmfs from
  /// its integer convolution counts.
  static Pmf from_grid(sim::Duration origin, sim::Duration resolution,
                       std::vector<double> mass);

  bool empty() const { return mass_.empty(); }

  /// Number of grid buckets holding nonzero mass.
  std::size_t support_size() const { return nonzero_; }

  /// Width of the stored grid in buckets (>= support_size(); the dense
  /// array includes interior zero buckets).
  std::size_t span() const { return mass_.size(); }

  /// pmf of X + Y for independent X ~ *this, Y ~ other. The result is
  /// re-bucketed at the coarser of the two resolutions. If either operand
  /// is empty the result is empty.
  Pmf convolve(const Pmf& other) const;

  /// Shifts the distribution by a constant (convolution with a point mass,
  /// done directly: the paper adds the latest gateway delay G this way).
  Pmf shift(sim::Duration offset) const;

  /// Bounded-support quantization: drops buckets off the upper tail while
  /// the removed cumulative mass stays <= epsilon. The result's CDF is
  /// within epsilon below the exact CDF at every deadline and its
  /// total_mass() is within [total - epsilon, total]. epsilon <= 0 returns
  /// *this unchanged.
  Pmf truncate_tail(double epsilon) const;

  /// P(X <= d). Returns 0 for an empty pmf. O(1): an index into the
  /// prefix-sum array.
  double cdf(sim::Duration d) const {
    if (mass_.empty() || d < origin_) return 0.0;
    const auto idx = static_cast<std::size_t>((d - origin_).count() /
                                              resolution_.count());
    return idx >= prefix_.size() ? prefix_.back() : prefix_[idx];
  }

  /// Expected value. Requires !empty().
  sim::Duration mean() const;

  /// Smallest x with P(X <= x) >= p. Requires !empty() and p in (0, 1].
  /// O(log n): binary search over the prefix sums.
  sim::Duration quantile(double p) const;

  /// Sum of all probabilities (1.0 up to rounding for a non-empty,
  /// untruncated pmf). O(1).
  double total_mass() const { return prefix_.empty() ? 0.0 : prefix_.back(); }

  /// (value, probability) pairs for the nonzero buckets, sorted by value.
  /// Materialized on demand — a diagnostics/testing view, not a hot path.
  std::vector<std::pair<sim::Duration, double>> entries() const;

  /// Value of the first (nonzero) grid bucket. Requires !empty().
  sim::Duration min_value() const { return origin_; }

  sim::Duration resolution() const { return resolution_; }

  /// Thread-local count of non-trivial convolutions performed (both
  /// operands non-empty) on the calling thread. Full convolutions dominate
  /// the uncached selection path, so benches and cache-effectiveness tests
  /// meter them; ResponseState's integer convolutions count here too, its
  /// O(window) incremental delta updates deliberately do not. Thread-local
  /// (not process-wide) so concurrent sweep workers neither race nor
  /// perturb each other's stats; a simulation runs entirely on one thread,
  /// so per-run deltas stay exact.
  static std::uint64_t convolutions_performed();
  static void reset_convolution_counter();

  /// Called by ResponseState when it performs a full integer convolution,
  /// so cached-vs-uncached convolution accounting covers both pipelines.
  static void count_convolution();

 private:
  /// Trims zero edges and rebuilds prefix_/nonzero_ from mass_.
  void finalize();

  sim::Duration origin_{0};      // value of mass_[0]
  sim::Duration resolution_{1};
  std::vector<double> mass_;     // probability per grid bucket
  std::vector<double> prefix_;   // prefix_[i] = sum(mass_[0..i])
  std::size_t nonzero_ = 0;
};

}  // namespace aqueduct::core
