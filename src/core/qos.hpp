// The paper's QoS model (Section 2).
//
// Consistency is two-dimensional: <ordering guarantee, staleness threshold>.
// The ordering guarantee is a property of the service; the staleness
// threshold is chosen per client. Timeliness is <deadline, probability>.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "sim/check.hpp"
#include "sim/time.hpp"

namespace aqueduct::core {

/// Logical version number ("Global Sequence Number" / GSN). Assigned by the
/// sequencer using a logical clock — no synchronized wall clocks needed
/// (paper Section 2, citing Lamport).
using Gsn = std::uint64_t;

/// Commit sequence number: the GSN of the most recent update a replica has
/// committed. Strictly monotonic per replica.
using Csn = std::uint64_t;

/// Staleness measured in versions: a replica with staleness x has not yet
/// applied the most recent x updates.
using Staleness = std::uint64_t;

/// Staleness of a replica with local view `gsn` of the global sequence and
/// commit number `csn`.
constexpr Staleness staleness_of(Gsn gsn, Csn csn) {
  return gsn > csn ? gsn - csn : 0;
}

/// Ordering guarantee offered by a replicated service to all its clients
/// (service-specific attribute of the consistency dimension).
enum class Ordering {
  kSequential,  // total order — the protocol implemented in this library
  kFifo,        // per-client FIFO order
};

std::string to_string(Ordering o);

/// Per-request quality-of-service specification.
///
/// Example from the paper: "a copy of the document that is not more than
/// 5 versions old, within 2.0 seconds, with probability at least 0.7" is
/// QoSSpec{.staleness_threshold = 5, .deadline = 2s, .min_probability = 0.7}.
struct QoSSpec {
  /// Maximum acceptable staleness `a`, in versions.
  Staleness staleness_threshold = 0;
  /// Response-time constraint `d`. Applies to read-only requests only.
  sim::Duration deadline = sim::Duration::zero();
  /// Minimum acceptable probability `Pc(d)` of meeting the deadline.
  double min_probability = 1.0;

  void validate() const {
    AQUEDUCT_CHECK_MSG(deadline > sim::Duration::zero(), "deadline must be positive");
    AQUEDUCT_CHECK_MSG(min_probability > 0.0 && min_probability <= 1.0,
                       "Pc(d) must be in (0, 1]");
  }
};

/// Request model (Section 2): a client declares the read-only methods of a
/// service by name; anything not declared read-only is treated as an
/// update (write-only or read-write).
class ReadOnlyRegistry {
 public:
  void declare_read_only(std::string method) { read_only_.insert(std::move(method)); }
  bool is_read_only(const std::string& method) const {
    return read_only_.contains(method);
  }
  std::size_t size() const { return read_only_.size(); }

 private:
  std::set<std::string> read_only_;
};

}  // namespace aqueduct::core
