#include "core/selection.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::core {

namespace {

/// Running accumulators of Algorithm 1 (lines 1 and 17–30). The failure
/// probability of the selected set factors into a primary product and a
/// secondary mixture weighted by the staleness factor (Eq. 1–3).
class CdfAccumulator {
 public:
  explicit CdfAccumulator(double stale_factor) : stale_factor_(stale_factor) {}

  /// includeCDF(): folds one replica's distribution values in and tests
  /// the terminating condition P_K(d) >= Pc(d).
  bool include(const CandidateReplica& r, double pc) {
    if (r.is_primary) {
      prim_cdf_ *= (1.0 - r.immediate_cdf);
    } else {
      sec_immed_cdf_ *= (1.0 - r.immediate_cdf);
      sec_delayed_cdf_ *= (1.0 - r.deferred_cdf);
    }
    return probability() >= pc;
  }

  /// P_K(d) = 1 - primCDF * secCDF (Eq. 1).
  double probability() const {
    const double sec_cdf = sec_immed_cdf_ * stale_factor_ +
                           sec_delayed_cdf_ * (1.0 - stale_factor_);
    return 1.0 - prim_cdf_ * sec_cdf;
  }

 private:
  double stale_factor_;
  double prim_cdf_ = 1.0;
  double sec_immed_cdf_ = 1.0;
  double sec_delayed_cdf_ = 1.0;
};

void sort_candidates(std::vector<CandidateReplica>& candidates, bool by_ert) {
  std::sort(candidates.begin(), candidates.end(),
            [by_ert](const CandidateReplica& a, const CandidateReplica& b) {
              if (by_ert && a.ert != b.ert) return a.ert > b.ert;
              if (a.immediate_cdf != b.immediate_cdf) {
                return a.immediate_cdf > b.immediate_cdf;
              }
              return a.id < b.id;
            });
}

}  // namespace

SelectionResult ProbabilisticSelector::select(SelectionContext& ctx) {
  std::vector<CandidateReplica>& candidates = ctx.candidates;
  const double stale_factor = ctx.stale_factor;
  const QoSSpec& qos = ctx.qos;
  qos.validate();
  AQUEDUCT_CHECK(stale_factor >= 0.0 && stale_factor <= 1.0);

  SelectionResult result;
  if (candidates.empty()) return result;

  // Line 2: visit least-recently-used replicas first (hot-spot avoidance);
  // ties broken by decreasing distribution-function value.
  sort_candidates(candidates, options_.sort_by_ert);

  CdfAccumulator acc(stale_factor);
  const double pc = qos.min_probability;

  if (!options_.tolerate_one_failure) {
    // Ablation variant: no failure allowance — every selected replica
    // contributes to P_K(d), including the first.
    for (const CandidateReplica& r : candidates) {
      result.selected.push_back(r.id);
      if (acc.include(r, pc)) {
        result.satisfied = true;
        break;
      }
    }
    result.predicted_probability = acc.probability();
    return result;
  }

  // Lines 3–16: the member of K with the highest immediate CDF is held out
  // of the accumulators, which simulates its failure — the returned set
  // meets the constraint even if its best member crashes.
  std::size_t max_cdf = 0;  // index into candidates
  result.selected.push_back(candidates[0].id);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const CandidateReplica& r = candidates[i];
    result.selected.push_back(r.id);
    bool found = false;
    if (r.immediate_cdf > candidates[max_cdf].immediate_cdf) {
      found = acc.include(candidates[max_cdf], pc);
      max_cdf = i;
    } else {
      found = acc.include(r, pc);
    }
    if (found) {
      result.satisfied = true;
      break;
    }
  }
  result.predicted_probability = acc.probability();
  return result;
}

std::string ProbabilisticSelector::name() const {
  std::string n = "probabilistic";
  if (!options_.tolerate_one_failure) n += "/no-failure-allowance";
  if (!options_.sort_by_ert) n += "/greedy-cdf-order";
  return n;
}

SelectionResult SelectAllSelector::select(SelectionContext& ctx) {
  SelectionResult result;
  CdfAccumulator acc(ctx.stale_factor);
  for (const CandidateReplica& r : ctx.candidates) {
    result.selected.push_back(r.id);
    acc.include(r, ctx.qos.min_probability);
  }
  result.satisfied = acc.probability() >= ctx.qos.min_probability;
  result.predicted_probability = acc.probability();
  return result;
}

SelectionResult SelectOneSelector::select(SelectionContext& ctx) {
  const std::vector<CandidateReplica>& candidates = ctx.candidates;
  SelectionResult result;
  if (candidates.empty()) return result;
  std::size_t pick = 0;
  if (policy_ == Policy::kRandom) {
    AQUEDUCT_CHECK_MSG(ctx.rng != nullptr,
                       "SelectOneSelector(kRandom) needs SelectionContext.rng");
    pick = static_cast<std::size_t>(ctx.rng->uniform_int(candidates.size()));
  } else {
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (candidates[i].ert > candidates[pick].ert) pick = i;
    }
  }
  CdfAccumulator acc(ctx.stale_factor);
  result.satisfied = acc.include(candidates[pick], ctx.qos.min_probability);
  result.predicted_probability = acc.probability();
  result.selected.push_back(candidates[pick].id);
  return result;
}

std::string SelectOneSelector::name() const {
  return policy_ == Policy::kRandom ? "select-one/random" : "select-one/lru";
}

SelectionResult FixedKSelector::select(SelectionContext& ctx) {
  SelectionResult result;
  sort_candidates(ctx.candidates, /*by_ert=*/false);
  CdfAccumulator acc(ctx.stale_factor);
  const std::size_t n = std::min(k_, ctx.candidates.size());
  for (std::size_t i = 0; i < n; ++i) {
    result.selected.push_back(ctx.candidates[i].id);
    acc.include(ctx.candidates[i], ctx.qos.min_probability);
  }
  result.satisfied = acc.probability() >= ctx.qos.min_probability;
  result.predicted_probability = acc.probability();
  return result;
}

std::string FixedKSelector::name() const {
  return "fixed-k/" + std::to_string(k_);
}

}  // namespace aqueduct::core
