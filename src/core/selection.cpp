#include "core/selection.hpp"

#include <algorithm>
#include <utility>

#include "sim/check.hpp"

namespace aqueduct::core {

namespace {

/// Running accumulators of Algorithm 1 (lines 1 and 17–30). The failure
/// probability of the selected set factors into a primary product and a
/// secondary mixture weighted by the staleness factor (Eq. 1–3).
class CdfAccumulator {
 public:
  explicit CdfAccumulator(double stale_factor) : stale_factor_(stale_factor) {}

  /// includeCDF(): folds one replica's distribution values in and tests
  /// the terminating condition P_K(d) >= Pc(d).
  bool include(const CandidateReplica& r, double pc) {
    if (r.is_primary) {
      prim_cdf_ *= (1.0 - r.immediate_cdf);
    } else {
      sec_immed_cdf_ *= (1.0 - r.immediate_cdf);
      sec_delayed_cdf_ *= (1.0 - r.deferred_cdf);
    }
    return probability() >= pc;
  }

  /// P_K(d) = 1 - primCDF * secCDF (Eq. 1).
  double probability() const {
    const double sec_cdf = sec_immed_cdf_ * stale_factor_ +
                           sec_delayed_cdf_ * (1.0 - stale_factor_);
    return 1.0 - prim_cdf_ * sec_cdf;
  }

 private:
  double stale_factor_;
  double prim_cdf_ = 1.0;
  double sec_immed_cdf_ = 1.0;
  double sec_delayed_cdf_ = 1.0;
};

/// The Algorithm 1 visiting order (line 2): least recently used first,
/// ties broken by decreasing distribution-function value, then by id —
/// a strict total order, so every evaluation strategy sees the exact same
/// sequence.
bool visit_before(const CandidateReplica& a, const CandidateReplica& b,
                  bool by_ert) {
  if (by_ert && a.ert != b.ert) return a.ert > b.ert;
  if (a.immediate_cdf != b.immediate_cdf) {
    return a.immediate_cdf > b.immediate_cdf;
  }
  return a.id < b.id;
}

void sort_candidates(std::vector<CandidateReplica>& candidates, bool by_ert) {
  std::sort(candidates.begin(), candidates.end(),
            [by_ert](const CandidateReplica& a, const CandidateReplica& b) {
              return visit_before(a, b, by_ert);
            });
}

/// The enumerate-and-grow loop of Algorithm 1 over a stream of candidates
/// in visiting order. `next()` yields the next candidate; the loop runs at
/// most `n` steps, stopping at the first prefix with P_K(d) >= pc. Shared
/// by the exhaustive strategy (stream = a sorted vector) and the pruned
/// one (stream = lazy heap pops), which is what makes the two bit-identical
/// by construction: same include order, same accumulator arithmetic.
template <typename Next>
SelectionResult grow_prefix(std::size_t n, Next&& next, double stale_factor,
                            double pc, bool tolerate_one_failure) {
  SelectionResult result;
  CdfAccumulator acc(stale_factor);

  if (!tolerate_one_failure) {
    // Ablation variant: no failure allowance — every selected replica
    // contributes to P_K(d), including the first.
    for (std::size_t i = 0; i < n; ++i) {
      const CandidateReplica r = next();
      result.selected.push_back(r.id);
      if (acc.include(r, pc)) {
        result.satisfied = true;
        break;
      }
    }
    result.predicted_probability = acc.probability();
    return result;
  }

  // Lines 3–16: the member of K with the highest immediate CDF is held out
  // of the accumulators, which simulates its failure — the returned set
  // meets the constraint even if its best member crashes.
  CandidateReplica max_cdf = next();
  result.selected.push_back(max_cdf.id);
  for (std::size_t i = 1; i < n; ++i) {
    const CandidateReplica r = next();
    result.selected.push_back(r.id);
    bool found = false;
    if (r.immediate_cdf > max_cdf.immediate_cdf) {
      found = acc.include(max_cdf, pc);
      max_cdf = r;
    } else {
      found = acc.include(r, pc);
    }
    if (found) {
      result.satisfied = true;
      break;
    }
  }
  result.predicted_probability = acc.probability();
  return result;
}

}  // namespace

SelectionResult ProbabilisticSelector::select(SelectionContext& ctx) {
  std::vector<CandidateReplica>& candidates = ctx.candidates;
  const double stale_factor = ctx.stale_factor;
  const QoSSpec& qos = ctx.qos;
  qos.validate();
  AQUEDUCT_CHECK(stale_factor >= 0.0 && stale_factor <= 1.0);

  SelectionResult result;
  if (candidates.empty()) return result;

  const bool by_ert = options_.sort_by_ert;
  const bool tolerate = options_.tolerate_one_failure;
  const double pc = qos.min_probability;
  const std::size_t n = candidates.size();

  if (options_.subset_search == ProbabilisticOptions::SubsetSearch::kPruned) {
    // Bound step of the branch-and-bound: every include() multiplies the
    // failure product by a factor <= 1, so P_K(d) grows monotonically as
    // the prefix extends — the probability with *every* candidate folded
    // in (minus the member the exhausted loop would hold out: the
    // first-in-visiting-order maximum immediate CDF) bounds what any
    // prefix can reach. One O(n) pass decides the branch; the bound is a
    // float routing decision only — both branches below compute exact,
    // bit-identical results.
    std::size_t held_out = n;  // n = none (no failure allowance)
    if (tolerate) {
      held_out = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (candidates[i].immediate_cdf > candidates[held_out].immediate_cdf ||
            (candidates[i].immediate_cdf ==
                 candidates[held_out].immediate_cdf &&
             visit_before(candidates[i], candidates[held_out], by_ert))) {
          held_out = i;
        }
      }
    }
    CdfAccumulator bound(stale_factor);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != held_out) bound.include(candidates[i], pc);
    }
    if (bound.probability() >= pc) {
      // Some prefix satisfies Pc(d): pop the visiting order lazily off a
      // max-heap so the search pays O(n + k log n) for a set that settles
      // after k replicas, instead of sorting all n.
      const auto heap_comp = [by_ert](const CandidateReplica& a,
                                      const CandidateReplica& b) {
        return visit_before(b, a, by_ert);
      };
      std::make_heap(candidates.begin(), candidates.end(), heap_comp);
      auto heap_end = candidates.end();
      const auto next = [&]() -> CandidateReplica {
        std::pop_heap(candidates.begin(), heap_end, heap_comp);
        return *--heap_end;
      };
      return grow_prefix(n, next, stale_factor, pc, tolerate);
    }
    // No prefix can satisfy: the answer is the full pool in visiting
    // order, with the exact accumulator fold the exhaustive loop performs.
    // Fall through to the sorted scan.
  }

  // Line 2: visit least-recently-used replicas first (hot-spot avoidance);
  // ties broken by decreasing distribution-function value.
  sort_candidates(candidates, by_ert);
  std::size_t pos = 0;
  const auto next = [&]() -> const CandidateReplica& {
    return candidates[pos++];
  };
  return grow_prefix(n, next, stale_factor, pc, tolerate);
}

std::string ProbabilisticSelector::name() const {
  std::string n = "probabilistic";
  if (!options_.tolerate_one_failure) n += "/no-failure-allowance";
  if (!options_.sort_by_ert) n += "/greedy-cdf-order";
  if (options_.subset_search ==
      ProbabilisticOptions::SubsetSearch::kExhaustiveScan) {
    n += "/exhaustive-scan";
  }
  return n;
}

SelectionResult SelectAllSelector::select(SelectionContext& ctx) {
  SelectionResult result;
  CdfAccumulator acc(ctx.stale_factor);
  for (const CandidateReplica& r : ctx.candidates) {
    result.selected.push_back(r.id);
    acc.include(r, ctx.qos.min_probability);
  }
  result.satisfied = acc.probability() >= ctx.qos.min_probability;
  result.predicted_probability = acc.probability();
  return result;
}

SelectionResult SelectOneSelector::select(SelectionContext& ctx) {
  const std::vector<CandidateReplica>& candidates = ctx.candidates;
  SelectionResult result;
  if (candidates.empty()) return result;
  std::size_t pick = 0;
  if (policy_ == Policy::kRandom) {
    AQUEDUCT_CHECK_MSG(ctx.rng != nullptr,
                       "SelectOneSelector(kRandom) needs SelectionContext.rng");
    pick = static_cast<std::size_t>(ctx.rng->uniform_int(candidates.size()));
  } else {
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (candidates[i].ert > candidates[pick].ert) pick = i;
    }
  }
  CdfAccumulator acc(ctx.stale_factor);
  result.satisfied = acc.include(candidates[pick], ctx.qos.min_probability);
  result.predicted_probability = acc.probability();
  result.selected.push_back(candidates[pick].id);
  return result;
}

std::string SelectOneSelector::name() const {
  return policy_ == Policy::kRandom ? "select-one/random" : "select-one/lru";
}

SelectionResult FixedKSelector::select(SelectionContext& ctx) {
  SelectionResult result;
  sort_candidates(ctx.candidates, /*by_ert=*/false);
  CdfAccumulator acc(ctx.stale_factor);
  const std::size_t n = std::min(k_, ctx.candidates.size());
  for (std::size_t i = 0; i < n; ++i) {
    result.selected.push_back(ctx.candidates[i].id);
    acc.include(ctx.candidates[i], ctx.qos.min_probability);
  }
  result.satisfied = acc.probability() >= ctx.qos.min_probability;
  result.predicted_probability = acc.probability();
  return result;
}

std::string FixedKSelector::name() const {
  return "fixed-k/" + std::to_string(k_);
}

}  // namespace aqueduct::core
